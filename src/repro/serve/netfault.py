"""Seeded network fault injection for the serve transport.

:class:`FaultySocket` wraps a connected socket and mangles traffic on a
deterministic, seeded schedule — the network-layer sibling of the
storage stack's :class:`~repro.drx.resilience.FaultInjector`.  Tests
wrap a client's connection (``DRXClient(socket_wrapper=...)``) and arm
rules; the frame-level CRC32 in :mod:`repro.serve.protocol` must catch
every corruption, the stub's reconnect-with-resume must retry under the
request's original idempotency key, and the server's dedup table must
keep the retried mutation exactly-once.

Fault kinds (armed per direction, fire on the Nth following op):

``bitflip``
    XOR one bit — position chosen by the seeded RNG — in the buffer
    being sent (or received).  Undetectable without the frame CRC.
``torn``
    Forward only a seeded fraction of the buffer, then close the
    socket: a frame torn mid-wire.
``disconnect``
    Close the socket instead of transferring anything.
``delay``
    Sleep before forwarding — delayed bytes that push a peer into its
    socket timeout.

The server-side counterparts are the ``serve.net.*`` fault *sites* in
:mod:`repro.core.faultsites`: the daemon announces the
received-but-not-dispatched and computed-but-not-sent instants of every
request, and a chaos ``crash`` rule there kills the whole daemon in the
lost-request / lost-ack window.
"""

from __future__ import annotations

import random
import socket
import time
from collections import deque

__all__ = ["FaultySocket"]


class FaultySocket:
    """A socket proxy that corrupts traffic on an armed schedule.

    Unarmed it is a transparent passthrough.  Rules fire at most once,
    in arming order per direction; ``after`` counts how many ops
    (``sendall`` / ``recv`` calls) pass untouched first.
    """

    def __init__(self, sock: socket.socket, seed: int = 0) -> None:
        self._sock = sock
        self.rng = random.Random(seed)
        self._send_rules: deque[dict] = deque()
        self._recv_rules: deque[dict] = deque()
        self.sends = 0              #: sendall ops seen
        self.recvs = 0              #: recv ops seen
        self.injected = 0           #: rules fired

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm_send(self, kind: str, after: int = 0, **kw) -> "FaultySocket":
        self._send_rules.append({"kind": kind, "after": int(after), **kw})
        return self

    def arm_recv(self, kind: str, after: int = 0, **kw) -> "FaultySocket":
        self._recv_rules.append({"kind": kind, "after": int(after), **kw})
        return self

    def _due(self, rules: deque, seen: int) -> dict | None:
        if rules and seen >= rules[0]["after"]:
            self.injected += 1
            return rules.popleft()
        return None

    def _mangle(self, rule: dict, data: bytes) -> bytes | None:
        """Apply ``rule`` to an outgoing/incoming buffer; ``None`` means
        the socket was closed instead of transferring."""
        kind = rule["kind"]
        if kind == "delay":
            time.sleep(float(rule.get("seconds", 0.05)))
            return data
        if kind == "disconnect":
            self.close()
            return None
        if kind == "torn":
            keep = int(len(data) * float(rule.get("keep", 0.5)))
            return data[:max(0, min(keep, len(data) - 1))]
        if kind == "bitflip":
            if not data:
                return data
            buf = bytearray(data)
            pos = self.rng.randrange(len(buf))
            buf[pos] ^= 1 << self.rng.randrange(8)
            return bytes(buf)
        raise ValueError(f"unknown fault kind {kind!r}")

    # ------------------------------------------------------------------
    # socket surface the protocol layer uses
    # ------------------------------------------------------------------
    def sendall(self, data) -> None:
        self.sends += 1
        rule = self._due(self._send_rules, self.sends)
        if rule is None:
            self._sock.sendall(data)
            return
        mangled = self._mangle(rule, bytes(data))
        if mangled is None:
            raise OSError("faulty socket: injected disconnect mid-send")
        self._sock.sendall(mangled)
        if rule["kind"] == "torn":
            self.close()
            raise OSError("faulty socket: frame torn mid-send")

    def recv(self, n: int) -> bytes:
        self.recvs += 1
        rule = self._due(self._recv_rules, self.recvs)
        if rule is None:
            return self._sock.recv(n)
        if rule["kind"] == "disconnect":
            self.close()
            return b""
        data = self._sock.recv(n)
        mangled = self._mangle(rule, data)
        if mangled is None:
            return b""
        if rule["kind"] == "torn":
            self.close()
            return mangled
        return mangled

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def setsockopt(self, *args) -> None:
        self._sock.setsockopt(*args)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __getattr__(self, name):
        return getattr(self._sock, name)
