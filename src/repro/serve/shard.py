"""Sharded array service: consistent-hash routing over N daemons.

One daemon process is a throughput ceiling — one accept loop, one
journal fsync stream, one Mpool.  The scale-out answer (ViPIOS's
cooperating I/O server processes; ArrayBridge's scale-out array
engines) is a *shard set*: N independent :class:`~.server.DRXServer`
processes, each with its own backend directory, journal, and buffer
pool, behind a client-side routing layer that consistent-hashes array
names onto shards.  Nothing is shared between shards, so:

* aggregate throughput scales with shard count (each shard has its own
  admission window and its own backing device),
* crash recovery stays *per-shard* — a kill -9'd shard replays its own
  journals on restart while the other shards keep serving, and
* the routing layer is stateless: any client can compute the owner of
  any array from the ring alone.

**Ring layout.**  The ring hashes *shard indices* (not addresses):
each shard contributes ``replicas`` virtual points derived from its
index, and an array name is owned by the first point clockwise from
the name's hash.  Keying by index means a shard's address can change —
a crashed daemon restarts on a new ephemeral port — without remapping
a single array; :meth:`HashRing.set_address` republishes the new
address and every client's next (re)connection picks it up through its
resolver.  Virtual points keep the assignment balanced (the per-shard
spread of a random name population approaches uniform as ``replicas``
grows) and, as in classic consistent hashing, adding shard N+1 only
remaps ~1/(N+1) of the names.

**Rebalance caveat.**  Remapped names are *routing* moves only — the
bytes of an existing array do **not** migrate.  Growing a live shard
set therefore needs an offline copy of remapped arrays (or a stretch:
chunk-range sub-sharding within an array).  The ring is honest about
this: :meth:`HashRing.spread` reports the assignment so operators can
audit balance before and after.
"""

from __future__ import annotations

import bisect
import hashlib
import threading

from ..core.errors import ServeError
from .client import DRXClient, Pipeline

__all__ = ["HashRing", "ShardedClient", "ShardedPipeline", "ShardSet",
           "merge_stats"]


def _point(key: str) -> int:
    """A stable 64-bit ring coordinate (identical across processes and
    runs — routing must not depend on PYTHONHASHSEED)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(),
        "big")


class HashRing:
    """Consistent-hash ring mapping array names to shard indices.

    Identities on the ring are shard *indices*; addresses are a
    separate, mutable table so a restarted shard keeps its arrays.
    Thread-safe: lookups take a snapshot of the address table.
    """

    def __init__(self, addresses, replicas: int = 64) -> None:
        addresses = list(addresses)
        if not addresses:
            raise ServeError("a shard ring needs at least one shard")
        self.replicas = int(replicas)
        self._lock = threading.Lock()
        self._addresses = [(host, int(port)) for host, port in addresses]
        points = []
        for idx in range(len(addresses)):
            for r in range(self.replicas):
                points.append((_point(f"shard:{idx}:{r}"), idx))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [i for _, i in points]

    @property
    def nshards(self) -> int:
        return len(self._addresses)

    def shard_of(self, name: str) -> int:
        """The shard index owning ``name``."""
        i = bisect.bisect_right(self._points, _point(f"name:{name}"))
        return self._owners[i % len(self._owners)]

    def address(self, idx: int) -> tuple[str, int]:
        with self._lock:
            return self._addresses[idx]

    def addresses(self) -> list[tuple[str, int]]:
        with self._lock:
            return list(self._addresses)

    def set_address(self, idx: int, address) -> None:
        """Republish shard ``idx`` at a new address (daemon restarted
        on a new port).  Array ownership is untouched — the ring keys
        on the index."""
        with self._lock:
            self._addresses[idx] = (address[0], int(address[1]))

    def resolver(self, idx: int):
        """A ``() -> (host, port)`` closure for :class:`DRXClient`'s
        ``resolver`` hook — every reconnect re-reads the table instead
        of pinning the address the connection was born with."""
        return lambda: self.address(idx)

    def spread(self, names) -> dict[int, int]:
        """How many of ``names`` each shard owns (balance audit)."""
        counts = {idx: 0 for idx in range(self.nshards)}
        for name in names:
            counts[self.shard_of(name)] += 1
        return counts


class ShardedClient:
    """Routes array operations onto a shard set through a
    :class:`HashRing`.

    One lazily-created :class:`DRXClient` per shard, each wired to the
    ring's resolver so shard restarts are followed automatically.  All
    per-array verbs route by array name; ``stats``/``ping`` fan out to
    every shard.  Construction kwargs are forwarded to each per-shard
    client (timeout, retries, backoff seed, fault-injection wrapper).
    """

    def __init__(self, ring: HashRing, client_id: str = "anon",
                 **client_kwargs) -> None:
        self.ring = ring
        self.client_id = client_id
        self._client_kwargs = client_kwargs
        self._clients: dict[int, DRXClient] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def shard_client(self, idx: int) -> DRXClient:
        """The (cached) client for shard ``idx``."""
        with self._lock:
            client = self._clients.get(idx)
            if client is None:
                client = DRXClient(
                    self.ring.address(idx), client_id=self.client_id,
                    resolver=self.ring.resolver(idx),
                    **self._client_kwargs)
                self._clients[idx] = client
            return client

    def client_for(self, name: str) -> DRXClient:
        """The client for the shard owning array ``name``."""
        return self.shard_client(self.ring.shard_of(name))

    def close(self) -> None:
        with self._lock:
            clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            client.close()

    def __enter__(self) -> "ShardedClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # per-array verbs: route by name
    # ------------------------------------------------------------------
    def create(self, name, *args, **kwargs) -> dict:
        return self.client_for(name).create(name, *args, **kwargs)

    def open(self, name, **kwargs) -> dict:
        return self.client_for(name).open(name, **kwargs)

    def read(self, name, lo, hi, **kwargs):
        return self.client_for(name).read(name, lo, hi, **kwargs)

    def write(self, name, lo, values, **kwargs) -> dict:
        return self.client_for(name).write(name, lo, values, **kwargs)

    def extend(self, name, **kwargs) -> dict:
        return self.client_for(name).extend(name, **kwargs)

    def flush(self, name, **kwargs) -> dict:
        return self.client_for(name).flush(name, **kwargs)

    def snapshot(self, name, dest, **kwargs) -> dict:
        return self.client_for(name).snapshot(name, dest, **kwargs)

    def scrub(self, name, **kwargs) -> dict:
        return self.client_for(name).scrub(name, **kwargs)

    # ------------------------------------------------------------------
    # fan-out verbs
    # ------------------------------------------------------------------
    def ping(self, **kwargs) -> list[dict]:
        return [self.shard_client(i).ping(**kwargs)
                for i in range(self.ring.nshards)]

    def stats(self, **kwargs) -> dict:
        """Merged per-shard + aggregate snapshot (see
        :func:`merge_stats`)."""
        return merge_stats([self.shard_client(i).stats(**kwargs)
                            for i in range(self.ring.nshards)])

    def batch(self, ops, timeout=None, return_exceptions=False) -> list:
        """Route a mixed batch: ops are grouped by owning shard, one
        batch frame per shard, results re-assembled in input order."""
        by_shard: dict[int, list[int]] = {}
        for i, op in enumerate(ops):
            name = op.get("name")
            if name is None:
                raise ServeError(
                    "sharded batch ops must name their array")
            by_shard.setdefault(self.ring.shard_of(name), []).append(i)
        outcomes: list = [None] * len(ops)
        for idx, positions in by_shard.items():
            sub = self.shard_client(idx).batch(
                [ops[i] for i in positions], timeout=timeout,
                return_exceptions=return_exceptions)
            for pos, out in zip(positions, sub):
                outcomes[pos] = out
        return outcomes

    def pipeline(self, depth: int = 64) -> "ShardedPipeline":
        return ShardedPipeline(self, depth=depth)


class ShardedPipeline:
    """One :class:`Pipeline` per shard, routed by array name.

    Submissions for different shards proceed fully independently; each
    per-shard pipeline keeps its own in-flight window, reconnect, and
    resend machinery.
    """

    def __init__(self, sharded: ShardedClient, depth: int = 64) -> None:
        self.sharded = sharded
        self.depth = depth
        self._pipes: dict[int, Pipeline] = {}
        self._lock = threading.Lock()

    def _pipe_for(self, name: str) -> Pipeline:
        idx = self.sharded.ring.shard_of(name)
        with self._lock:
            pipe = self._pipes.get(idx)
            if pipe is None:
                pipe = self.sharded.shard_client(idx).pipeline(
                    depth=self.depth)
                self._pipes[idx] = pipe
            return pipe

    def read(self, name, lo, hi, **kwargs):
        return self._pipe_for(name).read(name, lo, hi, **kwargs)

    def write(self, name, lo, values, **kwargs):
        return self._pipe_for(name).write(name, lo, values, **kwargs)

    def extend(self, name, **kwargs):
        return self._pipe_for(name).extend(name, **kwargs)

    def flush(self, name, **kwargs):
        return self._pipe_for(name).flush(name, **kwargs)

    def drain(self, timeout=None) -> None:
        with self._lock:
            pipes = list(self._pipes.values())
        for pipe in pipes:
            pipe.drain(timeout=timeout)

    def close(self, drain: bool = True) -> None:
        with self._lock:
            pipes, self._pipes = list(self._pipes.values()), {}
        for pipe in pipes:
            pipe.close(drain=drain)

    def __enter__(self) -> "ShardedPipeline":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(drain=exc_type is None)


class ShardSet:
    """Spawn-and-own N in-process shard daemons (tests, benches).

    Each shard gets its *own* backend — ``root/shard-NN`` on disk, or
    one fresh substrate per shard from ``fs_factory(idx)`` — its own
    journals, and its own admission window; exactly the isolation a
    multi-process deployment has, minus the process boundary (the CLI
    and the chaos tests cover true subprocess shards).  ``kill`` and
    ``restart`` model a shard crash: restart opens a *new* daemon over
    the same backend (running journal recovery) on a new port and
    republishes it on the ring.
    """

    def __init__(self, nshards: int, root=None, fs_factory=None,
                 host: str = "127.0.0.1", replicas: int = 64,
                 **server_kwargs) -> None:
        from .server import DRXServer

        if (root is None) == (fs_factory is None):
            raise ServeError(
                "exactly one of root= or fs_factory= must be given")
        self.nshards = int(nshards)
        self.root = root
        self.fs_factory = fs_factory
        self.host = host
        self.server_kwargs = server_kwargs
        self.servers: list = []
        self._backends: list = []
        for idx in range(self.nshards):
            server = DRXServer(**self._backend(idx),
                               host=host, **server_kwargs)
            server.start()
            self.servers.append(server)
        self.ring = HashRing([s.address for s in self.servers],
                             replicas=replicas)

    def _backend(self, idx: int) -> dict:
        if len(self._backends) <= idx:
            if self.root is not None:
                import pathlib
                path = pathlib.Path(self.root) / f"shard-{idx:02d}"
                path.mkdir(parents=True, exist_ok=True)
                self._backends.append({"root": path})
            else:
                self._backends.append({"fs": self.fs_factory(idx)})
        return self._backends[idx]

    def client(self, client_id: str = "anon", **kwargs) -> ShardedClient:
        return ShardedClient(self.ring, client_id=client_id, **kwargs)

    def kill(self, idx: int) -> None:
        """Abrupt death of one shard (in-process stand-in for kill -9)."""
        self.servers[idx].kill()

    def restart(self, idx: int, recover: bool = True):
        """Bring shard ``idx`` back over the same backend on a fresh
        port, replay its journals, republish its ring address."""
        from .server import DRXServer

        server = DRXServer(**self._backend(idx),
                           host=self.host, **self.server_kwargs)
        server.start()
        if recover:
            server.recover_all()
        self.servers[idx] = server
        self.ring.set_address(idx, server.address)
        return server

    def stop(self, drain: bool = True) -> None:
        for server in self.servers:
            if server.state != server.DEAD:
                server.shutdown(drain=drain)

    def __enter__(self) -> "ShardSet":
        return self

    def __exit__(self, *exc) -> None:
        self.stop(drain=False)


def merge_stats(snapshots: list[dict]) -> dict:
    """Merge per-shard ``stats`` snapshots into one system view.

    ``shards`` keeps each daemon's full snapshot (indexed by position);
    ``aggregate`` sums the QoS counters across shards, takes the max of
    high-water marks (the hottest shard bounds tail latency), unions
    array names, and totals journal/dedup/lock gauges — the numbers an
    operator reads first when the shard set is one logical service.
    """
    totals: dict[str, int] = {}
    arrays: set[str] = set()
    agg = {
        "inflight": 0, "queued": 0, "chunk_locks_held": 0,
        "queue_depth_hw": 0, "inflight_hw": 0,
        "journal_bytes": 0, "journal_arrays": 0,
        "dedup_hits": 0, "recovered_txns": 0, "checkpoints": 0,
    }
    for snap in snapshots:
        arrays.update(snap.get("arrays", ()))
        agg["inflight"] += snap.get("inflight", 0)
        agg["queued"] += snap.get("queued", 0)
        agg["chunk_locks_held"] += snap.get("chunk_locks_held", 0)
        agg["checkpoints"] += snap.get("checkpoints", 0)
        qos = snap.get("qos", {})
        for name, value in qos.get("totals", {}).items():
            totals[name] = totals.get(name, 0) + value
        agg["queue_depth_hw"] = max(agg["queue_depth_hw"],
                                    qos.get("queue_depth_hw", 0))
        agg["inflight_hw"] = max(agg["inflight_hw"],
                                 qos.get("inflight_hw", 0))
        for rec in snap.get("journal", {}).values():
            agg["journal_arrays"] += 1
            agg["journal_bytes"] += rec.get("size", 0)
            agg["dedup_hits"] += rec.get("dedup_hits", 0)
            stats = rec.get("stats", {})
            agg["recovered_txns"] += stats.get("recovered_txns", 0)
    agg["qos_totals"] = totals
    return {
        "nshards": len(snapshots),
        "shards": snapshots,
        "aggregate": dict(agg, arrays=len(arrays)),
    }
