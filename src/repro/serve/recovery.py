"""Crash recovery for journaled arrays (daemon open path).

The algorithm, run before an array is served after a restart:

1. **Scan** the journal byte-for-byte with
   :func:`~repro.serve.journal.decode_record`.  Every record is
   independently length- and CRC-checked; the scan stops at the first
   record that does not verify — everything beyond is the *torn tail*
   a crash mid-append left and is discarded (an fsync boundary
   guarantees nothing before the last acknowledged COMMIT is in that
   tail).
2. **Assemble transactions.**  BEGIN/DATA/COMMIT records are grouped by
   transaction id.  A transaction without a COMMIT record was never
   acknowledged (a crash beat the apply, or a deadline rolled it back)
   — it is *discarded*, never replayed.  So is a transaction with an
   ABORT record: its COMMIT was journaled ahead of a failed apply
   (the ``extend`` ordering) and the client was answered with an
   error, so it must be neither replayed nor dedup-cached.
3. **Replay** committed transactions in record order (equal to the
   lock-serialization order, see the ordering rules in
   :mod:`repro.serve.journal`) against the freshly opened
   :class:`~repro.drx.drxfile.DRXFile`: ``write`` re-applies its
   payload box, ``extend`` grows to the journaled *absolute* shape —
   both idempotent, so replaying state the crash already made durable
   is harmless.  The file is then flushed, making the replay itself
   durable.
4. **Re-seed the dedup table** from CHECKPOINT and COMMIT records, so a
   client retrying a request whose OK frame the crash swallowed is
   answered from cache instead of re-applied — exactly-once across
   restarts.

The caller (the daemon's array-open path) rotates the journal after a
successful recovery, so each crash's records are replayed exactly once.
"""

from __future__ import annotations

from ..drx.drxfile import DRXFile
from ..drx.storage import ByteStore
from .journal import ABORT, BEGIN, CHECKPOINT, COMMIT, DATA, decode_record

__all__ = ["RecoveryReport", "scan_journal", "recover"]


class RecoveryReport:
    """What one recovery pass found and did (JSON-able)."""

    __slots__ = ("valid_end", "torn_bytes", "records", "committed",
                 "replayed", "discarded_txns", "dedup",
                 "checkpoint_epoch", "max_txn")

    def __init__(self) -> None:
        self.valid_end = 0          #: offset where valid records stop
        self.torn_bytes = 0         #: discarded torn-tail bytes
        self.records = 0            #: valid records scanned
        self.committed = 0          #: transactions with a COMMIT record
        self.replayed = 0           #: transactions re-applied to the file
        self.discarded_txns = 0     #: BEGINs without a COMMIT
        self.dedup: dict = {}       #: recovered idempotency-key snapshot
        self.checkpoint_epoch = 0   #: epoch of the latest CHECKPOINT seen
        self.max_txn = 0            #: highest transaction id seen

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


def scan_journal(store: ByteStore) -> tuple[list, RecoveryReport]:
    """Parse every valid record; stop at the torn tail.

    Returns ``(records, report)`` where ``records`` is the ordered list
    of ``(rtype, header, payload)`` triples and ``report`` has the scan
    counters filled in (transaction fields still zero).
    """
    blob = store.read(0, store.size)
    records: list = []
    report = RecoveryReport()
    offset = 0
    while True:
        decoded = decode_record(blob, offset)
        if decoded is None:
            break
        rtype, header, payload, offset = decoded
        records.append((rtype, header, payload))
    report.valid_end = offset
    report.torn_bytes = len(blob) - offset
    report.records = len(records)
    return records, report


def _dedup_key_rest(key: list) -> tuple[str, str]:
    import json
    return str(key[0]), json.dumps(list(key)[1:], separators=(",", ":"))


def recover(file: DRXFile, store: ByteStore) -> RecoveryReport:
    """Scan ``store``, replay committed-but-possibly-unapplied
    transactions into ``file``, and return the report (including the
    recovered dedup snapshot).  Flushes ``file`` iff anything was
    replayed.  Does **not** rotate the journal — the caller does, so a
    crash mid-recovery just recovers again."""
    records, report = scan_journal(store)
    begins: dict[int, dict] = {}
    payloads: dict[int, bytes] = {}
    aborted: set[int] = set()
    # (txn, begin_header, result, key) — dedup seeding waits until the
    # aborted set is complete, so a committed-then-ABORTed transaction
    # (its apply failed and the client saw the error) is neither
    # replayed nor answered "ok" from the recovered cache
    committed: list[tuple[int, dict, dict, list | None]] = []
    for rtype, header, payload in records:
        if rtype == CHECKPOINT:
            # a checkpoint supersedes everything before it
            report.dedup = dict(header.get("dedup", {}))
            report.checkpoint_epoch = int(header.get("epoch", 0))
            begins.clear()
            payloads.clear()
            committed.clear()
            aborted.clear()
        elif rtype == BEGIN:
            begins[int(header["txn"])] = header
        elif rtype == DATA:
            payloads[int(header["txn"])] = payload
        elif rtype == COMMIT:
            txn = int(header["txn"])
            begin = begins.pop(txn, None)
            if begin is None:
                continue            # COMMIT for a checkpointed txn
            committed.append((txn, begin, header.get("result", {}),
                              header.get("key") or begin.get("key")))
        elif rtype == ABORT:
            aborted.add(int(header["txn"]))
        report.max_txn = max(report.max_txn,
                             int(header.get("txn", 0) or 0))
    committed = [c for c in committed if c[0] not in aborted]
    for _txn, begin, result, key in committed:
        if key:
            client, rest = _dedup_key_rest(key)
            report.dedup.setdefault(client, []).append(
                [rest, dict(result)])
    report.committed = len(committed)
    report.discarded_txns = len(begins)

    for _txn, begin, _result, _key in committed:
        verb = begin.get("verb")
        txn = int(begin["txn"])
        if verb == "write":
            import numpy as np
            values = np.frombuffer(
                payloads.get(txn, b""), dtype=begin["dtype"])
            values = values.reshape([int(s) for s in begin["shape"]])
            file.write([int(x) for x in begin["lo"]], values)
        elif verb == "extend":
            for dim, target in enumerate(int(x) for x in begin["to"]):
                by = target - file.shape[dim]
                if by > 0:
                    file.extend(dim, by)
        report.replayed += 1
    if report.replayed:
        file.flush()
    return report
