"""The drx-serve wire protocol: length-framed binary messages.

Frame layout (all integers big-endian, no padding)::

    +----------+-------+--------+------------+---------------+---------+
    | body_len | kind  | crc32  | header_len | header (JSON) | payload |
    | uint32   | uint8 | uint32 | uint32     | header_len B  | rest    |
    +----------+-------+--------+------------+---------------+---------+

``body_len`` counts everything after itself (``1 + 4 + 4 + header_len
+ payload_len``), so a reader always knows how many bytes to consume
before dispatching — there is no sniffing and no resynchronization.
``crc32`` covers the header and payload bytes: a bit flipped anywhere
on the wire (see :class:`repro.serve.netfault.FaultySocket`) fails the
check and the receiver raises :class:`ProtocolError` instead of acting
on corrupt data — the sender's retry layer reconnects and re-issues
under the request's idempotency key.  The *header* is a UTF-8 JSON
object carrying the verb and its scalar parameters; the *payload* is
raw array bytes (C-order element data for ``read`` responses and
``write`` requests, empty otherwise).  Keeping bulk data out of JSON
keeps the framing overhead per megabyte moved at a few dozen bytes.

Frame kinds:

``REQ``
    Client → server.  Header: ``verb`` (one of :data:`VERBS`),
    ``client`` (tenant identity for QoS/admission accounting),
    ``attempt`` (0 for the first try; retries increment it so the
    server can count forced retries per client), ``timeout`` (the
    request's remaining deadline budget in seconds — the *client*
    owns the deadline and ships the remaining budget, the server
    enforces it), plus verb-specific fields.  Mutating verbs
    (:data:`KEYED_VERBS`) additionally carry the idempotency key:
    ``sid`` (an opaque per-stub session token) and ``seq`` (the stub's
    monotonic request number) — assigned **once** per logical request
    and re-sent verbatim on every retry/reconnect, so the server's
    dedup table can answer a replay with the cached result instead of
    re-applying the mutation.

Pipelining wire rules (many REQ frames in flight per connection):

* A REQ carrying a ``rid`` (an integer unique among the connection's
  in-flight requests) opts into out-of-order dispatch: the server may
  execute it concurrently with other ``rid``-tagged requests from the
  same connection and reply **in any order**; every reply frame — OK,
  ERR, RETRY_LATER and DEADLINE alike — echoes the request's ``rid``
  so the client matches responses to requests by id, never by
  position.  Per-array lock ordering still serializes overlapping
  mutations; disjoint requests overlap.
* A REQ *without* ``rid`` is the legacy contract: processed in
  arrival order, exactly one in-order reply before the next frame is
  read.  The two styles may be mixed on one connection; a rid-less
  request acts as a pipeline barrier (the reader blocks on it).
* The ``batch`` verb carries several operations in **one** frame: the
  header's ``ops`` list holds one sub-header per operation (its own
  ``verb``, parameters, idempotency key, and ``nbytes`` — the length
  of its slice of the concatenated request payload).  Sub-operations
  execute in list order, each passing through admission, QoS,
  deadline, and locking exactly as if it had arrived alone.  The OK
  reply header's ``results`` list mirrors ``ops``: one
  ``{"kind", "header", "nbytes"}`` entry per operation, with the
  reply payloads concatenated in the same order.  A transport-level
  retry of the whole batch is safe: keyed sub-operations are deduped
  individually, so a batch torn mid-wire re-applies nothing — which
  is only sound because the server's per-client dedup window
  (:data:`DEDUP_WINDOW`) covers a maximal batch plus a full pipeline
  window, the most keyed ops a client can legally have retryable at
  once.  The batch's ``timeout`` is one shared budget: each sub-op is
  dispatched with the batch's *remaining* budget (ops that start
  after expiry get a ``DEADLINE`` result), so a batch can never
  consume more than its deadline of server wall time.
``OK``
    Success.  Verb-specific header + optional payload.
``ERR``
    Failure.  Header: ``error`` (exception class name), ``message``,
    ``transient`` (the server-side
    :func:`repro.drx.resilience.is_transient` classification — the
    client stub retries transient failures and surfaces fatal ones).
``RETRY_LATER``
    Admission control refused the request instead of queueing it
    unboundedly.  Header: ``reason``.  Always treated as transient.
``DEADLINE``
    The request's deadline expired server-side (queued or mid-flight).
    Header: ``message``.  The client raises
    :class:`~repro.core.errors.DeadlineError` — the budget is spent,
    retrying is the caller's decision, not the stub's.

Oversize frames are rejected *before* buffering (the daemon reads the
length prefix, sees it exceeds ``max_frame``, errors out and drops the
connection) so a misbehaving client cannot balloon server memory.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib

from ..core.errors import DRXError, ServeError
from ..drx.resilience import is_transient

__all__ = [
    "REQ", "OK", "ERR", "RETRY_LATER", "DEADLINE",
    "KIND_NAMES", "VERBS", "KEYED_VERBS", "BATCHABLE_VERBS",
    "MAX_FRAME", "MAX_BATCH_OPS", "MAX_PIPELINE_DEPTH", "DEDUP_WINDOW",
    "ProtocolError", "ConnectionClosed",
    "send_frame", "recv_frame", "encode_error", "decode_error",
    "split_payload",
]

REQ = 1
OK = 2
ERR = 3
RETRY_LATER = 4
DEADLINE = 5

KIND_NAMES = {REQ: "REQ", OK: "OK", ERR: "ERR",
              RETRY_LATER: "RETRY_LATER", DEADLINE: "DEADLINE"}

#: Every verb the daemon dispatches.
VERBS = frozenset({
    "ping", "open", "create", "read", "write", "extend", "flush",
    "snapshot", "scrub", "stats", "shutdown", "batch",
})

#: Mutating verbs the client stamps with an idempotency key — exactly
#: the verbs the server journals and dedups.
KEYED_VERBS = frozenset({"write", "extend"})

#: Verbs allowed inside a ``batch`` frame: no nesting, and shutdown
#: must stay a deliberate single-purpose request.
BATCHABLE_VERBS = VERBS - {"batch", "shutdown"}

#: Cap on operations per batch frame — bounded decode work per frame,
#: same spirit as MAX_FRAME.
MAX_BATCH_OPS = 1024

#: Cap on a pipeline's in-flight window (client-side ``Pipeline``
#: clamps ``depth`` to it).  A wire-level bound, not a tuning default:
#: it exists so the server can size its dedup table to cover every
#: request a client could legally have outstanding — and therefore
#: re-send after a torn connection.
MAX_PIPELINE_DEPTH = 1024

#: Per-client dedup-table bound.  The exactly-once guarantee ("a batch
#: torn mid-wire re-applies nothing") holds only while every mutation a
#: client can retry still has its result cached, so the window must
#: cover the largest possible retry set: one maximal batch frame
#: (``MAX_BATCH_OPS`` keyed ops) plus a full pipeline window of keyed
#: requests (``MAX_PIPELINE_DEPTH``) in flight alongside it.
DEDUP_WINDOW = MAX_BATCH_OPS + MAX_PIPELINE_DEPTH

#: Default per-frame size cap (64 MiB): bigger transfers must be split
#: into multiple requests — bounded buffering is the point.
MAX_FRAME = 64 * 1024 * 1024

_HEAD = struct.Struct("!IBII")      # body_len, kind, crc32, header_len


class ProtocolError(DRXError):
    """Malformed frame / protocol misuse.  Fatal: the connection is
    unrecoverable mid-stream, but a *reconnect* may succeed, so the
    client stub treats it as transient at the connection level."""

    transient = True


class ConnectionClosed(ProtocolError):
    """The peer went away mid-frame (or before one).  Transient: the
    daemon may be restarting — the stub reconnects and retries."""


def send_frame(sock: socket.socket, kind: int, header: dict,
               payload: bytes | memoryview = b"") -> None:
    """Serialize and send one frame (blocking, whole frame)."""
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(raw)
    if len(payload):
        crc = zlib.crc32(payload, crc)
    body_len = 1 + 4 + 4 + len(raw) + len(payload)
    sock.sendall(_HEAD.pack(body_len, kind, crc & 0xFFFFFFFF, len(raw))
                 + raw)
    if len(payload):
        sock.sendall(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    parts: list[bytes] = []
    got = 0
    while got < n:
        piece = sock.recv(min(n - got, 1 << 20))
        if not piece:
            raise ConnectionClosed(
                f"connection closed mid-frame ({got}/{n} bytes)")
        parts.append(piece)
        got += len(piece)
    return b"".join(parts)


def _recv_exact_into(sock: socket.socket, buf: memoryview) -> None:
    """Fill ``buf`` completely from ``sock``.

    Goes through ``sock.recv`` (not ``recv_into``) so socket proxies
    like :class:`~repro.serve.netfault.FaultySocket` — which intercept
    ``recv`` to inject faults — still see every byte.
    """
    n = len(buf)
    got = 0
    while got < n:
        piece = sock.recv(min(n - got, 1 << 20))
        if not piece:
            raise ConnectionClosed(
                f"connection closed mid-frame ({got}/{n} bytes)")
        buf[got:got + len(piece)] = piece
        got += len(piece)


def recv_frame(sock: socket.socket,
               max_frame: int = MAX_FRAME) -> tuple[int, dict, memoryview]:
    """Receive one frame; returns ``(kind, header, payload)``.

    The payload is a **writable** zero-copy memoryview over the frame's
    own receive buffer — each frame gets a private ``bytearray``, so
    ``np.frombuffer`` over the payload yields a mutable array without
    copying, and retaining it pins only this frame's buffer (header +
    payload), never another request's data.

    Raises :class:`ConnectionClosed` on EOF (clean EOF *between* frames
    included — the caller distinguishes by catching it around the first
    read) and :class:`ProtocolError` on malformed or oversize frames.
    """
    head = _recv_exact(sock, _HEAD.size)
    body_len, kind, crc, header_len = _HEAD.unpack(head)
    if body_len > max_frame:
        raise ProtocolError(
            f"frame of {body_len} bytes exceeds the {max_frame}-byte cap")
    if body_len < 1 + 4 + 4 + header_len:
        raise ProtocolError(
            f"inconsistent frame: body {body_len} < header {header_len}")
    if kind not in KIND_NAMES:
        raise ProtocolError(f"unknown frame kind {kind}")
    rest = bytearray(body_len - 1 - 4 - 4)
    _recv_exact_into(sock, memoryview(rest))
    if zlib.crc32(rest) & 0xFFFFFFFF != crc:
        raise ProtocolError(
            "frame CRC mismatch: corrupted on the wire")
    try:
        header = json.loads(rest[:header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return kind, header, memoryview(rest)[header_len:]


def encode_error(exc: BaseException) -> dict:
    """Serialize a server-side failure for an ``ERR`` frame."""
    return {
        "error": type(exc).__name__,
        "message": str(exc),
        "transient": bool(is_transient(exc)),
    }


def split_payload(entries: list, payload: bytes) -> list[memoryview]:
    """Slice a concatenated batch payload back into per-op pieces.

    ``entries`` is the ``ops`` (request) or ``results`` (reply) list;
    each entry's ``nbytes`` names its slice length.  Returns zero-copy
    memoryviews in entry order.  Raises :class:`ProtocolError` when the
    declared lengths disagree with the payload actually received.
    """
    view = memoryview(payload)
    pieces: list[memoryview] = []
    off = 0
    for entry in entries:
        nb = int(entry.get("nbytes", 0))
        if nb < 0 or off + nb > len(view):
            raise ProtocolError(
                f"batch payload underrun: op wants {nb} bytes at "
                f"offset {off} of {len(view)}")
        pieces.append(view[off:off + nb])
        off += nb
    if off != len(view):
        raise ProtocolError(
            f"batch payload overrun: {len(view) - off} trailing bytes")
    return pieces


def decode_error(header: dict) -> ServeError:
    """Reconstruct a transported failure client-side."""
    return ServeError(
        f"{header.get('error', 'ServeError')}: "
        f"{header.get('message', 'unknown server error')}",
        kind=str(header.get("error", "ServeError")),
        transient=bool(header.get("transient", False)),
    )
