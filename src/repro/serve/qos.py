"""Per-tenant quality-of-service accounting for the serve daemon.

Every request carries a ``client`` identity; the daemon keeps one
:class:`ClientQoS` record per identity plus server-wide aggregates.
The counters answer the operator questions the multi-tenant setting
raises: *who* is loading the shared substrate, who is being throttled
by admission control, who is missing deadlines, and how long requests
sit queued before an in-flight slot frees up.

Counter conservation is a hard invariant the soak test asserts::

    requests == ok + errors + retry_later + deadline_misses

i.e. every data-plane request received is counted exactly once on
arrival and exactly once by outcome.  A ``batch`` frame is *not* a
request of its own: each operation it carries is one arrival with one
outcome (the frame itself only bumps the ``batches`` counter, which
sits outside the law).  A *replayed* retry answered from
the dedup table is still one arrival with one outcome (``ok``) — it
additionally bumps ``dedup_hits``, so the conservation law holds under
retries and reconnects while the operator can still see how many
acknowledgements were served from cache instead of re-applied.  All
mutation therefore goes through :meth:`ClientQoS.bump` under a
per-record lock — bare ``+=`` from many connection threads would drop
counts.

Snapshots are plain JSON-able dicts — the ``stats`` protocol verb and
``drx-serve --dump-stats`` both export them verbatim.
"""

from __future__ import annotations

import threading

__all__ = ["ClientQoS", "QoSRegistry"]

_COUNTERS = ("requests", "ok", "errors", "retry_later", "deadline_misses",
             "retries", "dedup_hits", "bytes_read", "bytes_written",
             "batches")


class ClientQoS:
    """Cumulative counters for one client identity (thread-safe)."""

    __slots__ = _COUNTERS + ("queue_wait", "inflight_hw",
                             "_inflight", "_lock")

    def __init__(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)
        self.queue_wait = 0.0      #: summed seconds waiting for admission
        self.inflight_hw = 0       #: high-water mark of own in-flight
        self._inflight = 0
        self._lock = threading.Lock()

    def bump(self, *, queue_wait: float = 0.0, **deltas: int) -> None:
        """Add ``deltas`` to the named counters atomically."""
        with self._lock:
            for name, delta in deltas.items():
                if name not in _COUNTERS:
                    raise AttributeError(f"no QoS counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)
            self.queue_wait += queue_wait

    def enter_inflight(self) -> None:
        with self._lock:
            self._inflight += 1
            if self._inflight > self.inflight_hw:
                self.inflight_hw = self._inflight

    def exit_inflight(self) -> None:
        with self._lock:
            self._inflight -= 1

    def snapshot(self) -> dict:
        with self._lock:
            snap = {name: getattr(self, name) for name in _COUNTERS}
            snap["queue_wait"] = self.queue_wait
            snap["inflight_hw"] = self.inflight_hw
        return snap


class QoSRegistry:
    """Thread-safe registry of per-client and aggregate QoS counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clients: dict[str, ClientQoS] = {}
        #: server-wide admission-queue depth high-water mark
        self.queue_depth_hw = 0
        #: server-wide in-flight high-water mark
        self.inflight_hw = 0

    def client(self, name: str) -> ClientQoS:
        with self._lock:
            qos = self._clients.get(name)
            if qos is None:
                qos = self._clients[name] = ClientQoS()
            return qos

    def note_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self.queue_depth_hw:
                self.queue_depth_hw = depth

    def note_inflight(self, inflight: int) -> None:
        with self._lock:
            if inflight > self.inflight_hw:
                self.inflight_hw = inflight

    def snapshot(self) -> dict:
        """JSON-able per-client + aggregate counters."""
        with self._lock:
            records = sorted(self._clients.items())
            queue_depth_hw = self.queue_depth_hw
            inflight_hw = self.inflight_hw
        clients = {name: qos.snapshot() for name, qos in records}
        totals = {name: 0 for name in _COUNTERS}
        for snap in clients.values():
            for name in totals:
                totals[name] += snap[name]
        return {
            "clients": clients,
            "totals": totals,
            "queue_depth_hw": queue_depth_hw,
            "inflight_hw": inflight_hw,
        }
