"""Range locking for the serve daemon.

Two layers, always taken in the same order:

1. :class:`ArrayRWLock` — one per open array.  Data-plane verbs
   (``read`` / ``write``) take it *shared*; structural verbs
   (``extend`` / ``snapshot`` / ``flush`` / ``scrub``) take it
   *exclusive*, because they change the shape or touch every chunk.
2. :class:`ChunkLocks` — per-chunk exclusive locks keyed by the
   chunk's linear address.  A writer locks exactly the chunks its
   bounding box covers, **in ascending address order**; a reader does
   the same.  The global ascending-address discipline makes lock
   acquisition a total order, so two requests can never hold pieces of
   each other's ranges — deadlock is impossible by construction, and
   overlapping writers serialize while disjoint writers proceed fully
   concurrently.

Every blocking wait is *scope-aware*: it polls the request's
:class:`~repro.core.watchdog.CancelScope` so a deadline that expires
while the request is parked on a lock raises
:class:`~repro.core.errors.DeadlineError` instead of waiting forever —
lock waits count against the deadline exactly like I/O does.
"""

from __future__ import annotations

import threading

from ..core.watchdog import CancelScope

__all__ = ["ArrayRWLock", "ChunkLocks"]

#: Upper bound for one condition wait while parked on a lock; short
#: enough that cancellation is noticed promptly even if the notify is
#: missed, long enough to stay off the scheduler's back.
_WAIT_SLICE = 0.05


def _wait(cond: threading.Condition, scope: CancelScope | None,
          what: str) -> None:
    """One bounded wait on ``cond``, honouring ``scope``."""
    if scope is None:
        cond.wait(_WAIT_SLICE)
        return
    scope.check(what)
    remaining = scope.remaining()
    slice_ = _WAIT_SLICE if remaining is None else max(
        0.001, min(_WAIT_SLICE, remaining))
    cond.wait(slice_)
    scope.check(what)


class ArrayRWLock:
    """A writer-preferring shared/exclusive lock with cancellable waits.

    Writer preference keeps structural verbs (extend, snapshot) from
    starving behind a steady stream of readers: once an exclusive
    request is queued, new shared acquisitions wait behind it.

    Holds are optionally attributed to an ``owner`` token (the serve
    daemon passes its per-connection token), so
    :meth:`release_owner` can reclaim whatever a connection torn down
    between acquiring this lock and its chunk locks still holds — the
    same abrupt-disconnect backstop :meth:`ChunkLocks.release_owner`
    provides one layer down.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._shared_owners: dict[int, int] = {}   # id(owner) -> holds
        self._writer_owner: int | None = None

    def acquire_shared(self, scope: CancelScope | None = None,
                       owner: object | None = None) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                _wait(self._cond, scope, "array shared-lock wait")
            self._readers += 1
            if owner is not None:
                key = id(owner)
                self._shared_owners[key] = \
                    self._shared_owners.get(key, 0) + 1

    def release_shared(self, owner: object | None = None) -> None:
        with self._cond:
            self._readers -= 1
            if owner is not None:
                key = id(owner)
                n = self._shared_owners.get(key, 0) - 1
                if n <= 0:
                    self._shared_owners.pop(key, None)
                else:
                    self._shared_owners[key] = n
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_exclusive(self, scope: CancelScope | None = None,
                          owner: object | None = None) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    _wait(self._cond, scope, "array exclusive-lock wait")
            finally:
                self._writers_waiting -= 1
            self._writer = True
            self._writer_owner = id(owner) if owner is not None else None

    def release_exclusive(self) -> None:
        with self._cond:
            self._writer = False
            self._writer_owner = None
            self._cond.notify_all()

    def release_owner(self, owner: object) -> int:
        """Drop every hold attributed to ``owner`` (abrupt-disconnect
        cleanup); returns how many holds were reclaimed."""
        with self._cond:
            reclaimed = self._shared_owners.pop(id(owner), 0)
            if reclaimed:
                self._readers -= reclaimed
            if self._writer and self._writer_owner == id(owner):
                self._writer = False
                self._writer_owner = None
                reclaimed += 1
            if reclaimed:
                self._cond.notify_all()
            return reclaimed

    def held(self) -> tuple[int, bool]:
        """(shared holds, exclusive held) — observability for tests."""
        with self._cond:
            return self._readers, self._writer


class ChunkLocks:
    """Exclusive per-chunk locks keyed by linear chunk address.

    :meth:`acquire` takes every requested address in ascending order —
    the system-wide total order that makes deadlock structurally
    impossible.  On cancellation mid-acquisition, every address already
    taken is released before the :class:`DeadlineError` propagates, so
    an expired request never leaves a lock behind.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._held: dict[int, object] = {}    # address -> owner token

    def acquire(self, addresses: list[int], owner: object,
                scope: CancelScope | None = None) -> list[int]:
        """Lock ``addresses`` for ``owner``; returns the sorted list
        actually taken (pass it to :meth:`release`)."""
        taken: list[int] = []
        try:
            for addr in sorted(set(addresses)):
                with self._cond:
                    while addr in self._held:
                        _wait(self._cond, scope,
                              f"chunk lock wait (address {addr})")
                    self._held[addr] = owner
                taken.append(addr)
        except BaseException:
            self.release(taken)
            raise
        return taken

    def release(self, addresses: list[int]) -> None:
        if not addresses:
            return
        with self._cond:
            for addr in addresses:
                self._held.pop(addr, None)
            self._cond.notify_all()

    def release_owner(self, owner: object) -> int:
        """Drop every lock ``owner`` still holds (abrupt-disconnect
        cleanup); returns how many were released."""
        with self._cond:
            stale = [a for a, o in self._held.items() if o is owner]
            for addr in stale:
                del self._held[addr]
            if stale:
                self._cond.notify_all()
            return len(stale)

    def held(self) -> int:
        with self._cond:
            return len(self._held)
