"""The multi-tenant array service layer.

A daemon (:class:`DRXServer`) exposes the DRX array operations —
open / create / read / write / extend / flush / snapshot / scrub —
over a length-framed binary protocol (:mod:`repro.serve.protocol`),
multiplexing many concurrent clients onto shared Mpool, executor, and
(optionally) :class:`~repro.pfs.filesystem.ParallelFileSystem`
instances.  The robustness contract:

* per-request **deadlines**, propagated client → server → store and
  enforced mid-flight via the shared
  :mod:`repro.core.watchdog` machinery;
* **admission control** — bounded in-flight per client and globally,
  bounded queueing, explicit ``RETRY_LATER`` backpressure;
* per-chunk **range locking** — disjoint writers run concurrently,
  overlapping writers serialize deterministically;
* **graceful drain** on SIGTERM and abrupt-kill chaos coverage via the
  ``server.kill.daemon.*`` and ``serve.net.*`` fault sites;
* **crash durability and exactly-once** — a per-array write-ahead
  journal (:mod:`repro.serve.journal`) group-commit fsynced before
  every OK, replayed on restart by :mod:`repro.serve.recovery`, with
  ``(client, sid, seq)`` idempotency keys deduping retried mutations
  across reconnects and daemon restarts.

:class:`DRXClient` is the retrying stub (transient-vs-fatal
classification, shared backoff policy, deadline ownership,
reconnect-with-resume under a stable idempotency key); its
:class:`Pipeline` keeps many requests in flight per connection, and the
``batch`` verb carries several ops in one frame.  :mod:`repro.serve.shard`
scales the service *out*: N independent daemons behind a
consistent-hash ring (:class:`HashRing` / :class:`ShardedClient`), each
with its own journal, pool, and recovery domain.
"""

from .client import DRXClient, PendingReply, Pipeline
from .journal import JOURNAL_SUFFIX, DedupTable, Journal, JournalStats
from .locks import ArrayRWLock, ChunkLocks
from .netfault import FaultySocket
from .protocol import (
    KEYED_VERBS,
    MAX_FRAME,
    ConnectionClosed,
    ProtocolError,
)
from .qos import ClientQoS, QoSRegistry
from .recovery import RecoveryReport, recover, scan_journal
from .server import CancelGateStore, DRXServer
from .shard import HashRing, ShardedClient, ShardedPipeline, ShardSet, merge_stats

__all__ = [
    "DRXServer",
    "DRXClient",
    "Pipeline",
    "PendingReply",
    "HashRing",
    "ShardedClient",
    "ShardedPipeline",
    "ShardSet",
    "merge_stats",
    "ArrayRWLock",
    "ChunkLocks",
    "ClientQoS",
    "QoSRegistry",
    "CancelGateStore",
    "ProtocolError",
    "ConnectionClosed",
    "MAX_FRAME",
    "KEYED_VERBS",
    "JOURNAL_SUFFIX",
    "Journal",
    "JournalStats",
    "DedupTable",
    "RecoveryReport",
    "recover",
    "scan_journal",
    "FaultySocket",
]
