"""``python -m repro.serve`` — the :mod:`repro.serve.cli` entry point."""

from .cli import main

raise SystemExit(main())
