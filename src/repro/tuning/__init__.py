"""Cost-model-driven performance advice (``repro.tuning``).

The paper's future-work list asks for "optimizing the access by
reconciling the chunk size with the strip size of the parallel file
system"; PRs 1–9 added the machinery that makes every other knob matter
too (run coalescing, the Mpool read-ahead window, codecs, the executor
tiers).  This package closes the loop: it combines the analytic PFS
cost model (:mod:`repro.pfs.costmodel`) with the counters the system
already keeps about itself (:class:`~repro.drx.storage.StoreStats`,
:class:`~repro.drx.mpool.MpoolStats`,
:class:`~repro.drx.codec.CodecStats`) into an **explainable advisor**:

>>> from repro.tuning import Workload, advise
>>> w = Workload(bounds=(4096, 4096), chunk_shape=(64, 64))
>>> advice = advise(w)
>>> advice.settings()["readahead"]        # doctest: +SKIP
8
>>> print(advice.explain())               # doctest: +SKIP

Every candidate value of every knob carries its *predicted* cost in
cost-model seconds — and, when observed counters are supplied, the
cost-model replay of what actually happened — so a recommendation is
never a black box.  ``DRXFile.create(..., tune="auto")`` applies the
runtime-adjustable knobs (read-ahead window, executor width) at open
time; the creation-time knobs (chunk shape, stripe size, codec) are
printed by the CLI::

    python -m repro.tuning report --bounds 4096,4096 --chunk 64,64

The chunk-shape heuristics of :mod:`repro.drxmp.tuning` (E5's
chunk/stripe reconciliation) are re-exported here so this package is
the single entry point for tuning questions.
"""

from ..drxmp.tuning import chunk_stripe_report, suggest_chunk_shape
from .advisor import (
    Advice,
    Candidate,
    Observed,
    Workload,
    advise,
    advise_file,
    observed_profile,
    pfs_geometry,
)

__all__ = [
    "Advice",
    "Candidate",
    "Observed",
    "Workload",
    "advise",
    "advise_file",
    "observed_profile",
    "pfs_geometry",
    "suggest_chunk_shape",
    "chunk_stripe_report",
]
