"""The knob advisor: predicted vs. observed cost per candidate setting.

The advisor prices one *pass* of a workload (``requests`` rectilinear
requests against an extendible array) under the analytic PFS cost model
and a small CPU model of the request-assembly path, then sweeps each
tuning knob over a candidate list and keeps the cheapest value:

``chunk_shape``
    Candidates from :func:`~repro.drxmp.tuning.suggest_chunk_shape`
    around the current shape; priced by how many server requests a
    chunk access costs (the E5 curve) and how much per-chunk assembly
    CPU a pass burns.
``stripe_size``
    Powers of two around the chunk payload; a chunk that exactly fills
    a stripe is one request, a straddling chunk is two.
``codec``
    ``none`` vs. the observed compression ratio: compression pays when
    the transfer seconds saved exceed the encode/decode seconds added
    (rates come from :class:`~repro.drx.codec.CodecStats` when
    available, else a conservative default).
``executor_threads``
    Serial wall clock is the *sum* of per-server batch times; ``t``
    threads overlap distinct servers, flooring at the max-of-servers
    time the simulator charges.  Threads only pay when the pass is
    I/O-bound.
``readahead``
    A window ``w`` lets a sequential scan overlap assembly CPU with the
    next fault; the hidden fraction grows with ``w`` until the window
    covers one coalesced run.  Random workloads are charged for the
    wasted prefetches instead.

Every candidate is returned with its predicted cost; when an
:class:`Observed` counter block is supplied, the candidates matching
the *current* settings also carry the cost-model replay of the observed
transfer counters — predicted vs. observed on one line is the
explainability contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from math import prod
from typing import Any, Sequence

import numpy as np

from ..core.metadata import DRXType
from ..drxmp.tuning import chunk_stripe_report, suggest_chunk_shape
from ..pfs.costmodel import DEFAULT_COST_MODEL, CostModel

__all__ = ["Workload", "Candidate", "Advice", "Observed",
           "advise", "advise_file", "observed_profile", "pfs_geometry"]

#: Default PFS geometry when the workload doesn't pin one (matches the
#: simulator's defaults).
DEFAULT_STRIPE = 64 * 1024
DEFAULT_SERVERS = 4

#: Per-chunk request-assembly CPU (seconds): the vectorized kernels
#: amortize the interpreter over whole batches, the scalar fallback pays
#: a Python iteration per chunk.  Calibrated against the autotune
#: benchmark's measured per-chunk costs; only their ratio and order of
#: magnitude matter (the advisor compares candidates, it does not
#: forecast absolutes).
CPU_PER_CHUNK_VECTOR = 2e-6
CPU_PER_CHUNK_SCALAR = 40e-6

#: Conservative zlib-class codec throughput (bytes/second) used when no
#: observed :class:`CodecStats` rate is available.
DEFAULT_CODEC_RATE = 150e6

KNOBS = ("chunk_shape", "stripe_size", "codec", "executor_threads",
         "readahead")


def _itemsize(dtype) -> int:
    if isinstance(dtype, str):
        try:
            return DRXType.to_numpy(dtype).itemsize
        except Exception:
            return np.dtype(dtype).itemsize
    return np.dtype(dtype).itemsize


@dataclass(frozen=True)
class Workload:
    """What the advisor prices: a stream of rectilinear requests.

    ``request_shape=None`` means whole-array requests (the scan
    workloads of E1/E2/E7); ``sequential=False`` declares that
    successive requests do *not* walk increasing file addresses, which
    flips the read-ahead recommendation.  ``read_fraction`` weighs the
    codec's decode vs. encode rates.
    """

    bounds: tuple[int, ...]
    chunk_shape: tuple[int, ...]
    dtype: Any = "double"
    request_shape: tuple[int, ...] | None = None
    requests: int = 1
    sequential: bool = True
    read_fraction: float = 1.0
    stripe_size: int = DEFAULT_STRIPE
    nservers: int = DEFAULT_SERVERS
    growth_dims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "bounds", tuple(int(b) for b in self.bounds))
        object.__setattr__(self, "chunk_shape",
                           tuple(int(c) for c in self.chunk_shape))
        if self.request_shape is not None:
            object.__setattr__(self, "request_shape",
                               tuple(int(r) for r in self.request_shape))

    @property
    def itemsize(self) -> int:
        return _itemsize(self.dtype)

    @property
    def effective_request(self) -> tuple[int, ...]:
        req = self.request_shape or self.bounds
        return tuple(min(r, b) for r, b in zip(req, self.bounds))

    def chunk_counts(self, chunk_shape: Sequence[int] | None = None
                     ) -> tuple[int, ...]:
        """Chunks touched per request, per dimension (aligned box)."""
        cs = tuple(chunk_shape or self.chunk_shape)
        return tuple(-(-r // c) for r, c in zip(self.effective_request, cs))

    def chunks_per_request(self, chunk_shape=None) -> int:
        return prod(self.chunk_counts(chunk_shape))

    def runs_per_request(self, chunk_shape=None) -> int:
        """Coalesced contiguous runs per request.

        Under ``F*`` the chunks of a rectilinear box are contiguous
        along the last (row-major) chunk dimension, so a request of
        ``(n0, ..., nk-1)`` chunks coalesces into ``prod(n0..nk-2)``
        runs of length ``nk-1``.
        """
        counts = self.chunk_counts(chunk_shape)
        return max(1, prod(counts[:-1])) if counts else 1


@dataclass
class Candidate:
    """One candidate value of one knob, with its price tags."""

    knob: str
    value: Any
    predicted_cost: float               #: cost-model seconds per pass
    observed_cost: float | None = None  #: replay of observed counters
    chosen: bool = False
    current: bool = False
    why: str = ""

    def to_dict(self) -> dict:
        return {
            "knob": self.knob,
            "value": list(self.value) if isinstance(self.value, tuple)
            else self.value,
            "predicted_cost_s": self.predicted_cost,
            "observed_cost_s": self.observed_cost,
            "chosen": self.chosen,
            "current": self.current,
            "why": self.why,
        }


@dataclass
class Observed:
    """Raw counter snapshots pulled from a live handle (all optional)."""

    store: Any = None      #: StoreStats snapshot
    pool: Any = None       #: MpoolStats
    codec: Any = None      #: CodecStats
    scatter: Any = None    #: ScatterStats
    datatypes: Any = None  #: DatatypeStats

    def codec_ratio(self) -> float | None:
        c = self.codec
        if c is None or getattr(c, "stored_bytes", 0) == 0:
            return None
        return c.raw_bytes / c.stored_bytes

    def codec_rate(self) -> float | None:
        """Observed encode+decode throughput in raw bytes/second."""
        c = self.codec
        if c is None:
            return None
        t = getattr(c, "encode_time", 0.0) + getattr(c, "decode_time", 0.0)
        if t <= 0:
            return None
        return c.raw_bytes / t

    def replay_cost(self, model: CostModel, nservers: int) -> float | None:
        """Cost-model seconds of the transfers the store actually saw.

        Requests = physical transfers issued; seeks = one per vectored
        call (a call's runs are ascending, so intra-call transfers are
        near-sequential); bytes at model bandwidth; servers overlap.
        """
        st = self.store
        if st is None or st.syscalls == 0:
            return None
        vec = st.readv_calls + st.writev_calls
        seeks = vec if vec else st.syscalls
        total = (st.syscalls * model.request_overhead
                 + seeks * model.seek_time
                 + st.bytes_moved / model.bandwidth)
        return total / max(1, nservers)


def pfs_geometry(store) -> tuple[int, int]:
    """``(stripe_size, nservers)`` of a PFS-backed byte store.

    Unwraps a :class:`CompressedByteStore` to its inner store and reads
    the striping off the PFS file's layout; non-PFS stores get the
    simulator defaults (the advisor still prices them consistently).
    """
    pfile = getattr(store, "_pfile", None)
    if pfile is None:
        pfile = getattr(getattr(store, "_inner", None), "_pfile", None)
    layout = getattr(pfile, "layout", None)
    return (int(getattr(layout, "stripe_size", DEFAULT_STRIPE)),
            int(getattr(layout, "nservers", DEFAULT_SERVERS)))


def observed_profile(f) -> Observed:
    """Collect an :class:`Observed` block from a live ``DRXFile``."""
    from ..core.scatter import SCATTER_STATS
    from ..mpi.datatypes import DATATYPE_STATS

    store = getattr(f, "_data", None)
    codec_store = getattr(f, "_codec_store", None)
    pool = getattr(f, "_pool", None)
    return Observed(
        store=store.stats.snapshot() if store is not None
        and hasattr(store, "stats") else None,
        pool=pool.stats if pool is not None else None,
        codec=codec_store.codec_stats if codec_store is not None
        and hasattr(codec_store, "codec_stats") else None,
        scatter=SCATTER_STATS.snapshot(),
        datatypes=DATATYPE_STATS.snapshot(),
    )


# ---------------------------------------------------------------------------
# the price functions
# ---------------------------------------------------------------------------

def _pass_io_parallel(w: Workload, model: CostModel,
                      chunk_shape=None, stripe=None,
                      codec_ratio: float = 1.0) -> float:
    """Max-of-servers cost-model seconds for one pass (the floor the
    simulator charges when every server works concurrently)."""
    cs = tuple(chunk_shape or w.chunk_shape)
    stripe = int(stripe or w.stripe_size)
    chunks = w.chunks_per_request(cs)
    runs = w.runs_per_request(cs)
    chunk_nbytes = prod(cs) * w.itemsize
    nbytes = chunks * chunk_nbytes / max(1.0, codec_ratio)
    per_server_bytes = nbytes / w.nservers
    # each run is a vectored extent: its stripes round-robin the
    # servers, one request per (run, server) plus the tail stripes
    stripes_per_run = max(1, math.ceil(nbytes / runs / stripe))
    per_server_reqs = runs * max(1, -(-stripes_per_run // w.nservers))
    per_server_seeks = max(1, -(-runs // w.nservers))
    t = (per_server_reqs * model.request_overhead
         + per_server_seeks * model.seek_time
         + per_server_bytes / model.bandwidth)
    return w.requests * t


def _pass_cpu(w: Workload, chunk_shape=None, vectorized: bool = True,
              codec_on: bool = False,
              codec_rate: float | None = None) -> float:
    """Assembly + codec CPU seconds for one pass."""
    cs = tuple(chunk_shape or w.chunk_shape)
    chunks = w.chunks_per_request(cs) * w.requests
    per_chunk = CPU_PER_CHUNK_VECTOR if vectorized else CPU_PER_CHUNK_SCALAR
    t = chunks * per_chunk
    if codec_on:
        nbytes = chunks * prod(cs) * w.itemsize
        t += nbytes / (codec_rate or DEFAULT_CODEC_RATE)
    return t


def _wall(io_par: float, cpu: float, w: Workload, threads: int,
          readahead: int, chunk_shape=None,
          model: CostModel = DEFAULT_COST_MODEL) -> float:
    """Wall-clock seconds combining the I/O and CPU prices.

    Serial execution visits servers one after another (sum); ``t``
    threads overlap distinct servers down to the max-of-servers floor.
    A read-ahead window overlaps CPU with I/O on sequential passes and
    wastes prefetches on random ones.
    """
    io_serial = io_par * w.nservers
    if threads <= 0:
        io_wall = io_serial
        overlap = 0.0
    else:
        io_wall = max(io_par, io_serial / min(threads, w.nservers))
        if readahead > 0 and w.sequential:
            cs = tuple(chunk_shape or w.chunk_shape)
            run_len = max(1, w.chunk_counts(cs)[-1]
                          if w.chunk_counts(cs) else 1)
            hide = min(1.0, readahead / run_len)
            overlap = hide * min(io_wall, cpu)
        else:
            overlap = 0.0
    wall = io_wall + cpu - overlap
    if readahead > 0 and not w.sequential:
        # wasted prefetch requests compete with demand faults
        wall += w.requests * readahead * model.request_overhead
    return wall


# ---------------------------------------------------------------------------
# candidate sweeps
# ---------------------------------------------------------------------------

def _pow2_near(n: int) -> int:
    return 1 << max(0, int(math.ceil(math.log2(max(1, n)))))


def _chunk_candidates(w: Workload) -> list[tuple[int, ...]]:
    cands = [w.chunk_shape]
    try:
        cands.append(suggest_chunk_shape(
            w.bounds, w.stripe_size, w.dtype, growth_dims=w.growth_dims))
    except Exception:
        pass
    halved = tuple(max(1, c // 2) for c in w.chunk_shape)
    doubled = tuple(min(b, c * 2) for c, b in zip(w.chunk_shape, w.bounds))
    cands.extend([halved, doubled])
    out: list[tuple[int, ...]] = []
    for c in cands:
        if c not in out:
            out.append(c)
    return out


def _stripe_candidates(w: Workload, chunk_shape) -> list[int]:
    chunk_nbytes = prod(chunk_shape) * w.itemsize
    cands = {w.stripe_size, _pow2_near(chunk_nbytes)}
    for shift in (-1, 1):
        s = w.stripe_size * 2 ** shift
        if 4096 <= s <= 16 << 20:
            cands.add(int(s))
    return sorted(cands)


def _knob_cost(w: Workload, model: CostModel, settings: dict) -> float:
    """Full wall-clock price of one pass under a settings dict."""
    codec_on = settings.get("codec", "none") != "none"
    ratio = settings.get("codec_ratio", 1.0) if codec_on else 1.0
    io = _pass_io_parallel(w, model, settings["chunk_shape"],
                           settings["stripe_size"], ratio)
    cpu = _pass_cpu(w, settings["chunk_shape"], vectorized=True,
                    codec_on=codec_on,
                    codec_rate=settings.get("codec_rate"))
    return _wall(io, cpu, w, settings["executor_threads"],
                 settings["readahead"], settings["chunk_shape"], model)


@dataclass
class Advice:
    """The advisor's full output: every candidate, every price."""

    workload: Workload
    candidates: list[Candidate] = field(default_factory=list)

    def chosen(self, knob: str) -> Any:
        for c in self.candidates:
            if c.knob == knob and c.chosen:
                return c.value
        raise KeyError(f"no chosen candidate for knob {knob!r}")

    def settings(self) -> dict:
        return {k: self.chosen(k) for k in KNOBS}

    def to_dict(self) -> dict:
        return {
            "workload": {
                "bounds": list(self.workload.bounds),
                "chunk_shape": list(self.workload.chunk_shape),
                "request_shape": list(self.workload.effective_request),
                "requests": self.workload.requests,
                "sequential": self.workload.sequential,
                "stripe_size": self.workload.stripe_size,
                "nservers": self.workload.nservers,
            },
            "candidates": [c.to_dict() for c in self.candidates],
            "settings": {k: (list(v) if isinstance(v, tuple) else v)
                         for k, v in self.settings().items()},
        }

    def explain(self) -> str:
        """The human-readable predicted-vs-observed report."""
        lines = [
            f"workload: bounds={self.workload.bounds} "
            f"chunk={self.workload.chunk_shape} "
            f"request={self.workload.effective_request} "
            f"x{self.workload.requests} "
            f"{'sequential' if self.workload.sequential else 'random'}",
            f"pfs: stripe={self.workload.stripe_size} "
            f"servers={self.workload.nservers}",
            "",
            f"{'knob':<20}{'candidate':<22}{'predicted':>12}"
            f"{'observed':>12}  note",
        ]
        for c in self.candidates:
            mark = "*" if c.chosen else (">" if c.current else " ")
            obs = f"{c.observed_cost:.4f}s" if c.observed_cost is not None \
                else "-"
            val = "x".join(map(str, c.value)) \
                if isinstance(c.value, tuple) else str(c.value)
            lines.append(
                f"{mark} {c.knob:<18}{val:<22}"
                f"{c.predicted_cost:>11.4f}s{obs:>12}  {c.why}")
        lines.append("")
        lines.append("* = chosen, > = current; costs are cost-model "
                     "seconds per workload pass")
        return "\n".join(lines)


def advise(workload: Workload, observed: Observed | None = None,
           model: CostModel = DEFAULT_COST_MODEL,
           current: dict | None = None) -> Advice:
    """Sweep every knob and return the full candidate table.

    ``current`` pins the settings the handle runs with today (defaults:
    the workload's own geometry, no codec, serial, read-ahead 8); the
    matching candidates are flagged and — when ``observed`` counters
    are given — priced a second time by replaying those counters
    through the cost model.
    """
    cur = {
        "chunk_shape": workload.chunk_shape,
        "stripe_size": workload.stripe_size,
        "codec": "none",
        "executor_threads": 0,
        "readahead": 8,
    }
    if current:
        cur.update(current)
    obs_cost = observed.replay_cost(model, workload.nservers) \
        if observed is not None else None
    ratio = (observed.codec_ratio() if observed is not None else None)
    rate = (observed.codec_rate() if observed is not None else None)

    advice = Advice(workload)
    settings = dict(cur)
    settings.setdefault("codec_ratio", 1.0)
    settings.setdefault("codec_rate", rate)

    def sweep(knob: str, values, why_fn, extra=None):
        best_val, best_cost = None, math.inf
        rows = []
        for v in values:
            trial = dict(settings)
            trial[knob] = v
            if extra:
                trial.update(extra(v))
            cost = _knob_cost(workload, model, trial)
            rows.append((v, cost))
            if cost < best_cost - 1e-12:
                best_val, best_cost = v, cost
        for v, cost in rows:
            is_cur = (v == cur[knob])
            advice.candidates.append(Candidate(
                knob=knob, value=v, predicted_cost=cost,
                observed_cost=obs_cost if is_cur else None,
                chosen=(v == best_val), current=is_cur,
                why=why_fn(v)))
        settings[knob] = best_val
        if extra:
            settings.update(extra(best_val))

    def chunk_why(v):
        rep = chunk_stripe_report(v, settings["stripe_size"],
                                  workload.dtype)
        return (f"{rep['chunk_nbytes']}B/chunk, "
                f"{rep['worst_case_requests']} req worst case")

    sweep("chunk_shape", _chunk_candidates(workload), chunk_why)

    def stripe_why(v):
        rep = chunk_stripe_report(settings["chunk_shape"], v,
                                  workload.dtype)
        return (f"chunk/stripe ratio {rep['ratio']:.2f}"
                + (", fits one stripe" if rep["fits_one_stripe"] else ""))

    sweep("stripe_size", _stripe_candidates(workload,
                                            settings["chunk_shape"]),
          stripe_why)

    codec_name = cur["codec"] if cur["codec"] != "none" else "zlib"
    codec_vals = ["none", codec_name]
    codec_ratio = ratio if ratio is not None else 1.0

    def codec_extra(v):
        return {"codec_ratio": 1.0 if v == "none" else codec_ratio}

    def codec_why(v):
        if v == "none":
            return "no codec CPU, full-size transfers"
        if ratio is not None:
            return f"observed ratio {ratio:.2f}x"
        return "no observed ratio; assumed incompressible"

    sweep("codec", codec_vals, codec_why, extra=codec_extra)

    thread_vals = [0, 2, 4, 8]
    if cur["executor_threads"] not in thread_vals:
        thread_vals.append(cur["executor_threads"])
        thread_vals.sort()

    def thread_why(v):
        return "serial (exact historical path)" if v == 0 \
            else f"overlaps up to {min(v, workload.nservers)} servers"

    sweep("executor_threads", thread_vals, thread_why)

    ra_vals = [0, 2, 4, 8, 16, 32]
    if cur["readahead"] not in ra_vals:
        ra_vals.append(cur["readahead"])
        ra_vals.sort()

    def ra_why(v):
        if v == 0:
            return "demand faults only"
        if not workload.sequential:
            return "wasted on a random pattern"
        return f"window {v} pages ahead of a sequential scan"

    sweep("readahead", ra_vals, ra_why)
    return advice


def advise_file(f, request_shape: tuple[int, ...] | None = None,
                requests: int = 1, sequential: bool = True,
                model: CostModel = DEFAULT_COST_MODEL,
                with_observed: bool = True) -> Advice:
    """Advice for a live ``DRXFile`` handle.

    The workload defaults to whole-array sequential scans; the PFS
    geometry is discovered from the backing store when it is
    PFS-backed, else the simulator defaults are assumed.  Executor and
    codec currents are read off the handle so the report marks what the
    file runs with today.
    """
    meta = f.meta
    stripe, nservers = pfs_geometry(getattr(f, "_data", None))
    w = Workload(bounds=meta.element_bounds, chunk_shape=meta.chunk_shape,
                 dtype=meta.dtype, request_shape=request_shape,
                 requests=requests, sequential=sequential,
                 stripe_size=stripe, nservers=nservers)
    ex = getattr(f, "_executor", None)
    cur = {
        "codec": meta.codec,
        "executor_threads": getattr(ex, "threads", 0) if ex else 0,
        "readahead": getattr(f._pool, "_readahead", 8),
    }
    obs = observed_profile(f) if with_observed else None
    return advise(w, observed=obs, model=model, current=cur)
