"""Advisor CLI: ``python -m repro.tuning report``.

Prints the full predicted-vs-observed candidate table for a workload
described on the command line (no live handle needed — the costs come
from the analytic model), or a one-line chunk-shape suggestion via
``suggest``::

    python -m repro.tuning report --bounds 4096,4096 --chunk 64,64
    python -m repro.tuning report --bounds 4096,4096 --chunk 64,64 \\
        --request 512,512 --requests 64 --random
    python -m repro.tuning suggest --bounds 4096,4096 --stripe 65536
"""

from __future__ import annotations

import argparse
import json
import sys

from . import Workload, advise, suggest_chunk_shape


def _dims(text: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(x) for x in text.split(",") if x != "")
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad dimension list {text!r}")
    if not dims or any(d < 1 for d in dims):
        raise argparse.ArgumentTypeError(f"bad dimension list {text!r}")
    return dims


def _indices(text: str) -> tuple[int, ...]:
    try:
        idx = tuple(int(x) for x in text.split(",") if x != "")
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad index list {text!r}")
    if any(d < 0 for d in idx):
        raise argparse.ArgumentTypeError(f"bad index list {text!r}")
    return idx


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.tuning",
        description="cost-model-driven tuning advice for DRX arrays")
    sub = p.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="full knob-by-knob advice table")
    rep.add_argument("--bounds", type=_dims, required=True,
                     help="array element bounds, e.g. 4096,4096")
    rep.add_argument("--chunk", type=_dims, required=True,
                     help="current chunk shape, e.g. 64,64")
    rep.add_argument("--dtype", default="double")
    rep.add_argument("--request", type=_dims, default=None,
                     help="per-request box shape (default: whole array)")
    rep.add_argument("--requests", type=int, default=1)
    rep.add_argument("--random", action="store_true",
                     help="requests do not walk increasing addresses")
    rep.add_argument("--stripe", type=int, default=64 * 1024)
    rep.add_argument("--servers", type=int, default=4)
    rep.add_argument("--growth-dims", type=_indices, default=None,
                     help="dimensions expected to extend, e.g. 0")
    rep.add_argument("--codec", default="none",
                     help="codec the array currently uses")
    rep.add_argument("--threads", type=int, default=0,
                     help="current executor thread count")
    rep.add_argument("--readahead", type=int, default=8,
                     help="current Mpool read-ahead window")
    rep.add_argument("--json", action="store_true",
                     help="emit the machine-readable advice document")

    sug = sub.add_parser("suggest", help="one-line chunk-shape suggestion")
    sug.add_argument("--bounds", type=_dims, required=True)
    sug.add_argument("--stripe", type=int, default=64 * 1024)
    sug.add_argument("--dtype", default="double")
    sug.add_argument("--growth-dims", type=_indices, default=None)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    growth = tuple(args.growth_dims) if args.growth_dims else ()
    if args.command == "suggest":
        shape = suggest_chunk_shape(args.bounds, args.stripe, args.dtype,
                                    growth_dims=growth)
        print("x".join(map(str, shape)))
        return 0
    w = Workload(bounds=args.bounds, chunk_shape=args.chunk,
                 dtype=args.dtype, request_shape=args.request,
                 requests=args.requests, sequential=not args.random,
                 stripe_size=args.stripe, nservers=args.servers,
                 growth_dims=growth)
    advice = advise(w, current={
        "codec": args.codec,
        "executor_threads": args.threads,
        "readahead": args.readahead,
    })
    if args.json:
        json.dump(advice.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(advice.explain())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
