"""DRX / DRX-MP — parallel access of out-of-core dense extendible arrays.

A full reproduction of Otoo & Rotem, *Parallel Access of Out-Of-Core
Dense Extendible Arrays* (IEEE CLUSTER 2007):

* :mod:`repro.core` — axial vectors, the mapping function ``F*`` and its
  inverse, chunk arithmetic, the Fig.-2 allocation orders, meta-data;
* :mod:`repro.drx` — the serial library (POSIX ``.xmd``/``.xta`` file
  pairs, Mpool buffer cache, memory-resident extendible arrays);
* :mod:`repro.drxmp` — the parallel library (zones, collective MPI-IO
  sub-array access, the DRXMP_* API, a Global-Array-style RMA layer);
* :mod:`repro.mpi` — an in-process MPI-2 substrate (threads as ranks);
* :mod:`repro.pfs` — a simulated striped parallel file system with
  deterministic I/O accounting;
* :mod:`repro.serve` — a multi-tenant array service daemon (deadlines,
  admission control, range locking, graceful drain) plus its client;
* :mod:`repro.baselines` — HDF5-like (B-tree chunked), NetCDF-like
  (flat row-major) and DRA comparators;
* :mod:`repro.workloads`, :mod:`repro.bench` — experiment support.

Quick start (serial)::

    import numpy as np
    from repro.drx import DRXFile

    with DRXFile.create("demo", bounds=(100, 100),
                        chunk_shape=(16, 16)) as a:
        a.write((0, 0), np.random.default_rng(0).random((100, 100)))
        a.extend(dim=1, by=50)          # no reorganization
        col_major = a.read(order="F")   # on-the-fly transposition

Quick start (parallel)::

    from repro.mpi import mpiexec
    from repro.pfs import ParallelFileSystem
    from repro.drxmp import DRXMPFile

    fs = ParallelFileSystem(nservers=4)

    def job(comm):
        a = DRXMPFile.create(comm, fs, "demo", (1000, 1000), (64, 64))
        mem = a.read_zone()             # collective, BLOCK zones
        mem.array[...] = comm.rank
        a.write_zone(mem)               # collective
        a.extend(0, 500)                # grows without moving a byte
        a.close()

    mpiexec(4, job)
"""

from . import baselines, bench, core, drx, drxmp, mpi, pfs, serve, workloads
from .core import (
    DRXError,
    DRXMeta,
    DRXType,
    ExtendibleChunkIndex,
    f_star,
    f_star_inv,
    f_star_inv_many,
    f_star_many,
)
from .drx import DRXFile, MemExtendibleArray
from .drxmp import DRXMPFile, GlobalArray
from .mpi import mpiexec
from .pfs import ParallelFileSystem
from .serve import DRXClient, DRXServer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "core", "drx", "drxmp", "mpi", "pfs", "serve", "baselines",
    "workloads", "bench",
    "ExtendibleChunkIndex",
    "f_star", "f_star_many", "f_star_inv", "f_star_inv_many",
    "DRXMeta", "DRXType", "DRXError",
    "DRXFile", "MemExtendibleArray",
    "DRXMPFile", "GlobalArray",
    "mpiexec", "ParallelFileSystem",
    "DRXServer", "DRXClient",
]
