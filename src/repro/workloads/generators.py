"""Deterministic workload generators for tests, examples and benchmarks.

Everything takes an explicit ``seed``; identical inputs always produce
identical workloads, so every benchmark number in EXPERIMENTS.md is
reproducible bit for bit.

Growth schedules produce ``(dim, by)`` extension sequences (the input of
:func:`repro.core.extendible.replay_history`); access patterns produce
half-open element boxes; :func:`pattern_array` produces content whose
value encodes the element's own index, which makes misplaced elements
instantly detectable.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..core.errors import DRXError

__all__ = [
    "pattern_array",
    "round_robin_growth",
    "single_dim_growth",
    "random_growth",
    "bursty_growth",
    "row_scan_boxes",
    "column_scan_boxes",
    "random_boxes",
    "boundary_slabs",
]


def pattern_array(shape: Sequence[int],
                  dtype=np.float64) -> np.ndarray:
    """An array whose value at index ``I`` is the row-major rank of ``I``.

    A misrouted element therefore carries its true origin in its value.
    """
    n = int(np.prod(shape))
    return np.arange(n, dtype=dtype).reshape(shape)


# ---------------------------------------------------------------------------
# growth schedules
# ---------------------------------------------------------------------------

def round_robin_growth(rank: int, steps: int,
                       by: int = 1) -> list[tuple[int, int]]:
    """Extend dimensions 0, 1, ..., k-1, 0, 1, ... in turn.

    Every extension is "interrupted" (a different dimension each time),
    so this maximizes the axial-record count — the worst case for E.
    """
    return [(s % rank, by) for s in range(steps)]


def single_dim_growth(dim: int, steps: int,
                      by: int = 1) -> list[tuple[int, int]]:
    """Repeatedly extend one dimension (all merges: E stays minimal).

    With ``dim == 0`` this is the record-dimension append pattern that
    conventional formats support too — the fair comparison case of E1.
    """
    return [(dim, by)] * steps


def random_growth(rank: int, steps: int, seed: int,
                  max_by: int = 3) -> list[tuple[int, int]]:
    """Arbitrary-dimension growth — the case only DRX supports natively."""
    rng = np.random.default_rng(seed)
    return [(int(rng.integers(0, rank)), int(rng.integers(1, max_by + 1)))
            for _ in range(steps)]


def bursty_growth(rank: int, bursts: int, burst_len: int, seed: int,
                  by: int = 1) -> list[tuple[int, int]]:
    """Runs of uninterrupted extensions of a random dimension.

    Exercises the merge rule: E grows with the number of *bursts*, not
    the number of extensions.
    """
    rng = np.random.default_rng(seed)
    out: list[tuple[int, int]] = []
    prev = -1
    for _ in range(bursts):
        dim = int(rng.integers(0, rank))
        if rank > 1:
            while dim == prev:
                dim = int(rng.integers(0, rank))
        out.extend([(dim, by)] * burst_len)
        prev = dim
    return out


# ---------------------------------------------------------------------------
# access patterns (2-D and k-D boxes)
# ---------------------------------------------------------------------------

def row_scan_boxes(shape: Sequence[int],
                   rows_per_read: int = 1) -> Iterator[tuple[tuple, tuple]]:
    """Full scan in row-major-friendly order: slabs of leading rows."""
    n0 = shape[0]
    for start in range(0, n0, rows_per_read):
        stop = min(start + rows_per_read, n0)
        yield ((start,) + (0,) * (len(shape) - 1),
               (stop,) + tuple(shape[1:]))


def column_scan_boxes(shape: Sequence[int],
                      cols_per_read: int = 1) -> Iterator[tuple[tuple, tuple]]:
    """Full scan in column-major-friendly order: slabs of trailing cols."""
    nk = shape[-1]
    for start in range(0, nk, cols_per_read):
        stop = min(start + cols_per_read, nk)
        yield (tuple([0] * (len(shape) - 1)) + (start,),
               tuple(shape[:-1]) + (stop,))


def random_boxes(shape: Sequence[int], n: int, seed: int,
                 max_edge: int | None = None
                 ) -> Iterator[tuple[tuple, tuple]]:
    """``n`` random non-empty boxes inside ``shape``."""
    if any(s < 1 for s in shape):
        raise DRXError(f"empty shape {tuple(shape)}")
    rng = np.random.default_rng(seed)
    for _ in range(n):
        lo = []
        hi = []
        for s in shape:
            edge_cap = s if max_edge is None else min(s, max_edge)
            e = int(rng.integers(1, edge_cap + 1))
            start = int(rng.integers(0, s - e + 1))
            lo.append(start)
            hi.append(start + e)
        yield tuple(lo), tuple(hi)


def boundary_slabs(shape: Sequence[int],
                   thickness: int = 1) -> Iterator[tuple[tuple, tuple]]:
    """The low and high boundary slab of every dimension.

    Exercises partial edge chunks — the place where clipping bugs live.
    """
    k = len(shape)
    for d in range(k):
        t = min(thickness, shape[d])
        lo = [0] * k
        hi = list(shape)
        hi[d] = t
        yield tuple(lo), tuple(hi)
        lo = [0] * k
        hi = list(shape)
        lo[d] = shape[d] - t
        yield tuple(lo), tuple(hi)
