"""``repro.workloads`` — deterministic workload generators."""

from .generators import (
    boundary_slabs,
    bursty_growth,
    column_scan_boxes,
    pattern_array,
    random_boxes,
    random_growth,
    round_robin_growth,
    row_scan_boxes,
    single_dim_growth,
)

__all__ = [
    "pattern_array",
    "round_robin_growth",
    "single_dim_growth",
    "random_growth",
    "bursty_growth",
    "row_scan_boxes",
    "column_scan_boxes",
    "random_boxes",
    "boundary_slabs",
]
