"""Run every experiment of DESIGN.md §4 and print its table.

Usage::

    python -m repro.bench.experiments             # all experiments
    python -m repro.bench.experiments e1 a2 fig3  # a subset by id

Each experiment is the ``run_experiment()`` function of one
``benchmarks/bench_<id>_*.py`` module; this aggregator locates the
benchmarks directory relative to the repository (or an explicit
``REPRO_BENCH_DIR``) and executes them in DESIGN.md order, so one
command regenerates everything EXPERIMENTS.md records.
"""

from __future__ import annotations

import importlib.util
import os
import pathlib
import sys

__all__ = ["discover", "run", "main"]

#: DESIGN.md §4 ordering
ORDER = ["fig1", "fig2", "fig3", "e1", "e2", "e3", "e4", "e5", "e6",
         "e7", "e8", "a1", "a2", "a3"]


def _bench_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_BENCH_DIR")
    if env:
        return pathlib.Path(env)
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks"
        if candidate.is_dir() and list(candidate.glob("bench_*.py")):
            return candidate
    raise FileNotFoundError(
        "cannot locate the benchmarks/ directory; set REPRO_BENCH_DIR"
    )


def discover() -> dict[str, pathlib.Path]:
    """Map experiment id (``fig1``, ``e4``, ``a2``, ...) -> module path."""
    out: dict[str, pathlib.Path] = {}
    for path in sorted(_bench_dir().glob("bench_*.py")):
        ident = path.stem.split("_")[1]
        out[ident] = path
    return out


def _load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    assert spec and spec.loader
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run(ids: list[str] | None = None) -> int:
    """Run the selected (default: all) experiments; returns a count."""
    available = discover()
    if ids:
        unknown = [i for i in ids if i not in available]
        if unknown:
            raise SystemExit(
                f"unknown experiment id(s) {unknown}; "
                f"available: {sorted(available)}"
            )
        selected = ids
    else:
        selected = [i for i in ORDER if i in available]
        selected += sorted(set(available) - set(selected))
    ran = 0
    for ident in selected:
        module = _load(available[ident])
        fn = getattr(module, "run_experiment", None)
        if fn is None:
            print(f"[{ident}] (no run_experiment; skipped)")
            continue
        table = fn()
        print()
        print(table.render())
        ran += 1
    return ran


def main(argv: list[str] | None = None) -> None:
    args = list(sys.argv[1:] if argv is None else argv)
    n = run([a.lower() for a in args] or None)
    print(f"\n{n} experiment table(s) regenerated.")


if __name__ == "__main__":
    main()
