"""Benchmark harness: tables, timers and experiment registration.

Every experiment of DESIGN.md §4 renders its result as a plain-text
table through :class:`Table`, so running ``pytest benchmarks/`` or any
``benchmarks/bench_*.py`` as a script reproduces the rows recorded in
EXPERIMENTS.md verbatim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["Table", "wallclock", "format_bytes", "speedup"]


@dataclass
class Table:
    """A fixed-column text table with aligned rendering."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} "
                f"columns"
            )
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(h.ljust(w)
                                for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for n in self.notes:
            lines.append(f"   note: {n}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.001:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def wallclock(fn: Callable[[], Any], repeat: int = 1) -> tuple[float, Any]:
    """Best-of-``repeat`` wall-clock seconds of ``fn()`` plus its result."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def format_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{n}B"
        n /= 1024
    return f"{n}B"  # pragma: no cover


def speedup(baseline: float, ours: float) -> str:
    """'-' when either side is ~0, else baseline/ours as 'N.NNx'."""
    if ours <= 0 or baseline <= 0:
        return "-"
    return f"{baseline / ours:.2f}x"
