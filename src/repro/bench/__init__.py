"""``repro.bench`` — benchmark harness utilities."""

from . import experiments
from .harness import Table, format_bytes, speedup, wallclock

__all__ = ["Table", "wallclock", "format_bytes", "speedup", "experiments"]
