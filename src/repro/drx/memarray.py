"""Memory-resident extendible arrays.

DRX "has the added feature that the memory arrays can be maintained as
either conventional arrays or memory resident extendible arrays".  A
:class:`MemExtendibleArray` keeps the chunks in memory (one NumPy buffer
per chunk, indexed by linear chunk address) and uses the same axial-
vector mapping as the file format — the in-core realization discussed in
the paper's reference [22].

It supports the same element/sub-array/extend interface as
:class:`~repro.drx.drxfile.DRXFile`, converts to and from conventional
NumPy arrays, and round-trips through a DRX file.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.chunking import (
    box_shape,
    chunk_of,
    iter_box_intersections,
    validate_box,
)
from ..core.errors import DRXIndexError
from ..core.mapping import f_star_many
from ..core.metadata import DRXMeta, DRXType

__all__ = ["MemExtendibleArray"]


class MemExtendibleArray:
    """An in-core dense extendible array (chunked, axial-vector mapped)."""

    def __init__(self, bounds: Sequence[int], chunk_shape: Sequence[int],
                 dtype: str | np.dtype | type = DRXType.DOUBLE) -> None:
        self.meta = DRXMeta.create(bounds, chunk_shape, dtype)
        self._chunks: list[np.ndarray] = [
            np.zeros(self.meta.chunk_shape, dtype=self.meta.dtype)
            for _ in range(self.meta.num_chunks)
        ]

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.meta.element_bounds

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        return self.meta.chunk_shape

    @property
    def dtype(self) -> np.dtype:
        return self.meta.dtype

    @property
    def rank(self) -> int:
        return self.meta.rank

    @property
    def num_chunks(self) -> int:
        return self.meta.num_chunks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemExtendibleArray(shape={self.shape}, "
                f"chunks={self.chunk_shape}, dtype={self.meta.dtype_name})")

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def extend(self, dim: int, by: int) -> None:
        """Extend dimension ``dim`` by ``by`` elements (zero filled)."""
        self.meta.extend_elements(dim, by)
        while len(self._chunks) < self.meta.num_chunks:
            self._chunks.append(
                np.zeros(self.meta.chunk_shape, dtype=self.meta.dtype)
            )

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def get(self, index: Sequence[int]):
        self._check_element(index)
        ci, local = chunk_of(index, self.chunk_shape)
        return self._chunks[self.meta.eci.address(ci)][local].copy()

    def put(self, index: Sequence[int], value) -> None:
        self._check_element(index)
        ci, local = chunk_of(index, self.chunk_shape)
        self._chunks[self.meta.eci.address(ci)][local] = value

    def __getitem__(self, index):
        return self.get(index)

    def __setitem__(self, index, value) -> None:
        self.put(index, value)

    def _check_element(self, index: Sequence[int]) -> None:
        if len(index) != self.rank:
            raise DRXIndexError(f"index rank {len(index)} != {self.rank}")
        for i, n in zip(index, self.shape):
            if not 0 <= i < n:
                raise DRXIndexError(
                    f"element {tuple(index)} outside bounds {self.shape}"
                )

    # ------------------------------------------------------------------
    # sub-array access
    # ------------------------------------------------------------------
    def read(self, lo: Sequence[int] | None = None,
             hi: Sequence[int] | None = None,
             order: str = "C") -> np.ndarray:
        if order not in ("C", "F"):
            raise DRXIndexError(f"order must be 'C' or 'F', got {order!r}")
        lo = tuple(lo) if lo is not None else (0,) * self.rank
        hi = tuple(hi) if hi is not None else self.shape
        validate_box(lo, hi, self.shape)
        # allocate directly in the requested order and scatter chunks
        # into it — on-the-fly transposition, no post-hoc copy
        out = np.zeros(box_shape(lo, hi), dtype=self.dtype, order=order)
        for q, inter in self._plan(lo, hi):
            out[inter.box_slices] = self._chunks[q][inter.chunk_slices]
        return out

    def write(self, lo: Sequence[int], values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype)
        lo = tuple(lo)
        hi = tuple(l + s for l, s in zip(lo, values.shape))
        validate_box(lo, hi, self.shape)
        for q, inter in self._plan(lo, hi):
            self._chunks[q][inter.chunk_slices] = values[inter.box_slices]

    def _plan(self, lo, hi):
        inters = list(iter_box_intersections(lo, hi, self.chunk_shape))
        idx = np.asarray([it.chunk_index for it in inters], dtype=np.int64)
        addrs = f_star_many(self.meta.eci, idx)
        order = np.argsort(addrs, kind="stable")
        return [(int(addrs[i]), inters[i]) for i in order]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_numpy(self, order: str = "C") -> np.ndarray:
        """The whole array as a conventional NumPy array."""
        return self.read(None, None, order)

    @classmethod
    def from_numpy(cls, values: np.ndarray,
                   chunk_shape: Sequence[int]) -> "MemExtendibleArray":
        arr = cls(values.shape, chunk_shape, values.dtype)
        arr.write((0,) * values.ndim, values)
        return arr

    def to_drx(self, path, overwrite: bool = False):
        """Store into a DRX file pair (same chunk layout byte for byte)."""
        from .drxfile import DRXFile
        f = DRXFile.create(path, self.shape, self.chunk_shape,
                           self.meta.dtype_name, overwrite=overwrite)
        # carry the growth history over so the file's axial vectors (and
        # therefore its chunk addresses) match this array exactly
        f.meta.eci = self.meta.eci.copy()
        f.meta.element_bounds = self.shape
        if self._chunks:
            nbytes = f.meta.chunk_nbytes
            f._data.writev([(0, nbytes * len(self._chunks))],
                           b"".join(chunk.tobytes()
                                    for chunk in self._chunks))
        f._persist_meta()
        return f

    @classmethod
    def from_drx(cls, drxfile) -> "MemExtendibleArray":
        """Load a DRX file fully into memory, preserving the growth
        history (axial vectors are replicated, not recomputed)."""
        arr = cls.__new__(cls)
        arr.meta = drxfile.meta.replicate()
        nbytes = arr.meta.chunk_nbytes
        arr._chunks = []
        if arr.meta.num_chunks:
            blob = memoryview(
                drxfile._data.readv([(0, nbytes * arr.meta.num_chunks)]))
            for q in range(arr.meta.num_chunks):
                raw = blob[q * nbytes:(q + 1) * nbytes]
                arr._chunks.append(
                    np.frombuffer(bytearray(raw), dtype=arr.meta.dtype)
                    .reshape(arr.meta.chunk_shape)
                )
        return arr
