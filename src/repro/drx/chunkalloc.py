"""Slot-allocation table: physical placement for compressed chunks.

For ``codec="none"`` arrays the extendible-array addressing function is
also the physical placement function — chunk ``q* = F*(index)`` lives at
byte offset ``q* * chunk_nbytes``.  Compressed chunks have variable
stored size, so that identity breaks; this module supplies the level of
indirection every chunked array store with compression grows (HDF5's
chunk B-tree, TileDB's fragment offsets): a table mapping the *logical*
chunk address to its *physical* extent in the chunk region.

Allocation policy
-----------------

* **Append** — a chunk written for the first time (or grown past its
  extent) is placed at the end of the physical region.
* **In-place overwrite** — rewriting a chunk whose new payload fits its
  existing extent reuses it... but only when the extent was allocated
  *since the last commit* (see below).
* **Best-fit reuse** — freed extents are kept in a coalesced free list;
  new allocations take the smallest free extent that fits before
  growing the file.
* **Compaction** — an explicit pass migrates the highest-placed slots
  into the lowest free holes, then trims the region
  (:meth:`SlotTable.plan_compaction` / :meth:`SlotTable.trim_end`).

Crash consistency (copy-on-write epochs)
----------------------------------------

The table is persisted inside the ``.xmd`` sidecar, which commits
atomically (temp + fsync + rename, or the single-file shadow header
slots).  Payload writes, however, land *before* the table commit.  The
invariant that makes a crash at any point recoverable is:

    **no extent referenced by the last committed table is ever
    overwritten before the next commit succeeds.**

Concretely: overwriting a chunk whose slot is already committed
allocates a *new* extent (copy-on-write) and quarantines the old one on
a *pending* free list; :meth:`SlotTable.mark_committed` — called only
after the sidecar replace succeeded — promotes pending extents to the
real free list.  Slots allocated within the current epoch may be freely
overwritten in place: no committed metadata references them.  A crash
anywhere therefore reopens the previous committed table with every one
of its payloads intact, bit for bit.

``serialize()`` emits the *post-commit* view (pending frees folded in):
the document being written is exactly the table that holds once the
rename lands.

A single extent may also be :meth:`reserved <SlotTable.reserve>` —
the single-file container parks its tail-relocated meta blob inside the
chunk region and the allocator must route around it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import DRXFormatError

__all__ = ["Slot", "SlotTable"]


@dataclass(frozen=True)
class Slot:
    """One physical extent holding a chunk's stored payload.

    ``length`` is the payload size (what a read returns and the CRC
    covers); ``capacity`` is the allocated extent size (``>= length`` —
    slack left behind by an in-place shrink, reusable by a later grow).
    """

    offset: int
    length: int
    capacity: int

    def __post_init__(self) -> None:
        if self.length > self.capacity:
            raise DRXFormatError(
                f"slot payload {self.length} exceeds capacity "
                f"{self.capacity}"
            )

    @property
    def end(self) -> int:
        return self.offset + self.capacity


class SlotTable:
    """Logical chunk address -> physical extent, with COW epochs."""

    def __init__(self) -> None:
        self._slots: dict[int, Slot] = {}
        self._free: list[tuple[int, int]] = []      # (offset, length), sorted
        self._pending_free: list[tuple[int, int]] = []
        self._uncommitted: set[int] = set()
        self._reserved: tuple[int, int] | None = None
        self._end = 0

    # -- queries -----------------------------------------------------------

    def get(self, index: int) -> Slot | None:
        return self._slots.get(index)

    def __contains__(self, index: int) -> bool:
        return index in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def indices(self) -> list[int]:
        return sorted(self._slots)

    @property
    def end(self) -> int:
        """Physical extent of the chunk region (append high-water mark)."""
        return self._end

    @property
    def reserved(self) -> tuple[int, int] | None:
        return self._reserved

    @property
    def stored_bytes(self) -> int:
        """Total payload bytes currently referenced by slots."""
        return sum(s.length for s in self._slots.values())

    @property
    def free_bytes(self) -> int:
        """Reusable bytes (free list only; pending extents excluded)."""
        return sum(length for _off, length in self._free)

    def dirty(self) -> bool:
        """True when the table differs from the last committed view."""
        return bool(self._uncommitted or self._pending_free)

    # -- allocation --------------------------------------------------------

    def allocate(self, index: int, length: int) -> Slot:
        """Place ``length`` payload bytes for chunk ``index``.

        Returns the slot to write the payload at.  Applies the policy
        described in the module docstring; never returns an extent that
        the last committed table references.
        """
        if length < 0:
            raise DRXFormatError(f"negative payload length {length}")
        old = self._slots.get(index)
        if old is not None:
            if index in self._uncommitted:
                if length <= old.capacity:      # in-place overwrite
                    slot = Slot(old.offset, length, old.capacity)
                    self._slots[index] = slot
                    return slot
                # outgrew an epoch-local extent: safe to recycle now
                self._release(old.offset, old.capacity, pending=False)
            else:
                # COW: committed payload must survive until next commit
                self._release(old.offset, old.capacity, pending=True)
        slot = self._place(length)
        self._slots[index] = slot
        self._uncommitted.add(index)
        return slot

    def remove(self, index: int) -> None:
        """Drop a chunk's slot (shrink); extent freed per COW rules."""
        old = self._slots.pop(index, None)
        if old is None:
            return
        pending = index not in self._uncommitted
        self._uncommitted.discard(index)
        self._release(old.offset, old.capacity, pending=pending)

    def _place(self, length: int) -> Slot:
        if length == 0:
            return Slot(self._end, 0, 0)
        best = None
        for i, (off, avail) in enumerate(self._free):
            if avail >= length and (best is None
                                    or avail < self._free[best][1]):
                best = i
        if best is not None:
            off, avail = self._free.pop(best)
            if avail > length:
                self._insert_free(off + length, avail - length)
            return Slot(off, length, length)
        # append, routing around the reserved span
        off = self._end
        if self._reserved is not None:
            r0, rlen = self._reserved
            if off < r0 + rlen and off + length > r0:
                off = r0 + rlen
        self._end = off + length
        return Slot(off, length, length)

    def _release(self, offset: int, length: int, *, pending: bool) -> None:
        if length <= 0:
            return
        if pending:
            self._pending_free.append((offset, length))
        else:
            self._insert_free(offset, length)

    def _insert_free(self, offset: int, length: int) -> None:
        self._free.append((offset, length))
        self._coalesce()

    def _coalesce(self) -> None:
        if not self._free:
            return
        self._free.sort()
        merged = [self._free[0]]
        for off, length in self._free[1:]:
            poff, plen = merged[-1]
            if poff + plen == off:
                merged[-1] = (poff, plen + length)
            else:
                merged.append((off, length))
        self._free = merged

    # -- reserved span (single-file tail meta blob) ------------------------

    def reserve(self, offset: int, length: int) -> None:
        """Mark ``[offset, offset+length)`` unusable by the allocator.

        Replaces any prior reservation; the old span is quarantined on
        the pending list (it may still hold the last committed meta
        blob) and becomes reusable after the next commit.
        """
        if self._reserved is not None:
            r0, rlen = self._reserved
            if (r0, rlen) != (offset, length):
                self._release(r0, rlen, pending=True)
        self._reserved = (offset, length)
        self._end = max(self._end, offset + length)
        # a reservation may land on space the free list offered; carve it out
        kept: list[tuple[int, int]] = []
        for off, flen in self._free:
            if off + flen <= offset or off >= offset + length:
                kept.append((off, flen))
                continue
            if off < offset:
                kept.append((off, offset - off))
            if off + flen > offset + length:
                kept.append((offset + length, off + flen - offset - length))
        self._free = kept
        self._coalesce()

    # -- commit protocol ---------------------------------------------------

    def mark_committed(self) -> None:
        """The serialized table just landed durably: promote pending
        frees and start a fresh COW epoch."""
        for off, length in self._pending_free:
            self._insert_free(off, length)
        self._pending_free = []
        self._uncommitted = set()

    # -- compaction --------------------------------------------------------

    def plan_compaction(self, max_moves: int | None = None
                        ) -> list[tuple[int, Slot, int]]:
        """Plan moves of tail slots into committed-free holes.

        Returns ``(index, current_slot, new_offset)`` triples.  Every
        destination comes from the current free list (call only after a
        commit, when pending frees have been promoted), so executing the
        copies never touches an extent the committed table references.
        Greedy: highest slot into the lowest hole that fits, while the
        move lowers the slot's offset.
        """
        if self._pending_free or self._uncommitted:
            raise DRXFormatError(
                "compaction requires a committed table (flush first)"
            )
        free = list(self._free)
        plan: list[tuple[int, Slot, int]] = []
        order = sorted(self._slots, key=lambda i: -self._slots[i].offset)
        for index in order:
            if max_moves is not None and len(plan) >= max_moves:
                break
            slot = self._slots[index]
            best = None
            for i, (off, avail) in enumerate(free):
                if avail >= slot.length and off < slot.offset and \
                        (best is None or off < free[best][0]):
                    best = i
            if best is None:
                continue
            off, avail = free.pop(best)
            plan.append((index, slot, off))
            if avail > slot.length:
                free.append((off + slot.length, avail - slot.length))
                free.sort()
        return plan

    def apply_move(self, index: int, new_offset: int) -> Slot:
        """Record a compaction move after the payload bytes were copied."""
        old = self._slots[index]
        slot = Slot(new_offset, old.length, old.length)
        self._slots[index] = slot
        self._uncommitted.add(index)
        self._release(old.offset, old.capacity, pending=True)
        # the destination came out of the free list; drop it there
        kept: list[tuple[int, int]] = []
        for off, flen in self._free:
            if off + flen <= new_offset or off >= new_offset + slot.length:
                kept.append((off, flen))
                continue
            if off < new_offset:
                kept.append((off, new_offset - off))
            if off + flen > new_offset + slot.length:
                kept.append((new_offset + slot.length,
                             off + flen - new_offset - slot.length))
        self._free = kept
        return slot

    def trim_end(self) -> int:
        """Lower the append high-water mark to what is actually used.

        Drops free extents above the new end; returns the new end (the
        caller may physically truncate the chunk region to it).
        """
        used = 0
        for slot in self._slots.values():
            used = max(used, slot.end)
        if self._reserved is not None:
            used = max(used, self._reserved[0] + self._reserved[1])
        for off, length in self._pending_free:
            used = max(used, off + length)
        self._end = max(used, 0)
        self._free = [(off, min(length, self._end - off))
                      for off, length in self._free if off < self._end]
        self._free = [(o, n) for o, n in self._free if n > 0]
        return self._end

    # -- serialization -----------------------------------------------------

    def serialize(self) -> dict:
        """Deterministic dict for the ``.xmd`` sidecar (post-commit view)."""
        free = self._free + self._pending_free
        free.sort()
        merged: list[list[int]] = []
        for off, length in free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1][1] += length
            else:
                merged.append([off, length])
        return {
            "slots": [[i, s.offset, s.length, s.capacity]
                      for i, s in sorted(self._slots.items())],
            "free": merged,
            "end": self._end,
            "reserved": list(self._reserved) if self._reserved else None,
        }

    @classmethod
    def deserialize(cls, doc: dict) -> "SlotTable":
        try:
            table = cls()
            for entry in doc["slots"]:
                i, off, length, cap = (int(v) for v in entry)
                table._slots[i] = Slot(off, length, cap)
            table._free = [(int(o), int(n)) for o, n in doc.get("free", [])]
            table._coalesce()
            table._end = int(doc["end"])
            reserved = doc.get("reserved")
            if reserved is not None:
                table._reserved = (int(reserved[0]), int(reserved[1]))
        except (KeyError, TypeError, ValueError) as exc:
            raise DRXFormatError(f"corrupt chunk slot table: {exc}") from exc
        return table
