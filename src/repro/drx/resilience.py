"""Fault tolerance for the DRX storage stack.

Three cooperating pieces, all deterministic and seedable:

* :class:`FaultPlan` — a scripted schedule of faults.  Rules select an
  operation (``read``/``write``/``readv``/``writev``/``flush``/
  ``truncate``/``replace``, or ``"*"``), skip the first ``after``
  matching calls, then fire ``times`` times (optionally with probability
  ``p`` drawn from a seeded RNG).  Rule kinds: transient errors, short
  reads, torn (partially applied) writes, and simulated crashes — both
  at store operations and at the named code sites of
  :mod:`repro.drx.faultpoints`.  Activate a plan (``with plan:``) to arm
  its crash sites; store-level rules fire through a
  :class:`FaultInjector`.

* :class:`FaultInjector` — a :class:`~repro.drx.storage.ByteStore`
  decorator that consults a plan at *every* entry point, including the
  vectored ``readv``/``writev`` paths of the run-coalescing engine, so
  coalesced transfers cannot dodge injected faults.

* :class:`RetryingByteStore` — a decorator that classifies errors
  (:func:`is_transient`), re-issues transient failures with bounded
  exponential backoff and deterministic jitter, verifies vectored and
  scalar read lengths (healing injected short reads), and folds
  ``retries``/``giveups``/``short_reads`` into the shared
  :class:`~repro.drx.storage.StoreStats`.  Injected crashes
  (:class:`~repro.core.errors.CrashError`) are never retried.

On top sit the integrity helpers: :class:`ChecksumGuard` verifies and
records the per-chunk CRC32 checksums stored in the meta-data document
(:attr:`repro.core.metadata.DRXMeta.chunk_crcs`), and
:class:`ScrubReport` is the result of ``DRXFile.scrub()``'s full
container scan.

Typical test / benchmark wiring over a real file::

    plan = FaultPlan(seed=7)
    plan.fail("*", p=0.2, times=None)        # flaky medium
    wrap = lambda store, role: RetryingByteStore(
        FaultInjector(store, plan), seed=7)
    with DRXFile.create(path, (64, 64), (8, 8),
                        store_wrapper=wrap) as a:
        ...                                   # completes despite faults
"""

from __future__ import annotations

import errno
import random
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.errors import ChecksumError, CrashError, DRXError, DRXFileError, PFSError
from . import faultpoints
from .faultpoints import (ALL_SITES, CRASH_SITES, DAEMON_SITES, KILL_SITES,
                          crash_point)
from .storage import ByteStore, Extent

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "RetryingByteStore",
    "BackoffPolicy",
    "ChecksumGuard",
    "ScrubReport",
    "is_transient",
    "chunk_crc",
    "crash_point",
    "CRASH_SITES",
    "KILL_SITES",
    "DAEMON_SITES",
    "ALL_SITES",
]

#: Store operations a :class:`FaultInjector` intercepts ("*" matches all).
STORE_OPS = ("read", "write", "readv", "writev", "flush", "truncate",
             "replace")

#: errno values treated as transient when a plain OSError surfaces.
_TRANSIENT_ERRNOS = frozenset(
    {errno.EINTR, errno.EAGAIN, errno.EBUSY, errno.EIO, errno.ETIMEDOUT}
)


def is_transient(exc: BaseException) -> bool:
    """Classify an error as transient (retry) or permanent (surface).

    An explicit boolean ``transient`` attribute on the exception wins;
    otherwise simulated-PFS faults are transient (loose cables, busy
    servers), :class:`~repro.core.errors.CrashError` and file-level DRX
    errors are permanent, and raw ``OSError``\\ s are judged by errno.
    """
    flagged = getattr(exc, "transient", None)
    if flagged is not None:
        return bool(flagged)
    if isinstance(exc, CrashError):
        return False
    if isinstance(exc, PFSError):
        return True
    if isinstance(exc, DRXError):
        return False
    if isinstance(exc, OSError):
        return exc.errno in _TRANSIENT_ERRNOS
    return False


def chunk_crc(data) -> int:
    """The checksum stored per chunk: CRC32 of the raw chunk bytes."""
    return zlib.crc32(data) & 0xFFFFFFFF


# ---------------------------------------------------------------------------
# fault plans
# ---------------------------------------------------------------------------

@dataclass
class FaultRule:
    """One scripted fault (see :class:`FaultPlan` factory methods)."""

    op: str                    #: store op, "*", or a named fault site
    kind: str                  #: "error" | "short_read" | "torn_write" | "crash" | "hook"
    after: int = 0             #: matching calls to let through first
    times: int | None = 1      #: firings before the rule disarms (None = ∞)
    p: float = 1.0             #: firing probability once eligible
    keep: float = 0.5          #: fraction applied for short/torn transfers
    error: Callable[[str], BaseException] | None = None
    action: Callable[[], None] | None = None   #: for kind="hook"
    seen: int = 0              #: matching calls observed
    fired: int = 0             #: faults actually injected

    def make_error(self, detail: str) -> BaseException:
        if self.kind == "crash":
            return CrashError(f"injected crash: {detail}")
        if self.error is not None:
            return self.error(detail)
        return PFSError(f"injected transient fault: {detail}")


class FaultPlan:
    """A deterministic, seedable schedule of storage faults.

    One plan can drive any number of :class:`FaultInjector`\\ s and —
    while *active* (used as a context manager) — the named crash points
    of the commit protocols.  Every consulted operation and visited
    crash site is tallied in :attr:`hits`, and every injected fault in
    :attr:`injected`, so tests can assert both coverage ("this site
    fired") and effect ("this fault was actually delivered").
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.rules: list[FaultRule] = []
        self.hits: dict[str, int] = {}
        self.injected: dict[str, int] = {}

    # -- rule factories ----------------------------------------------------
    def fail(self, op: str = "*", after: int = 0, times: int | None = 1,
             p: float = 1.0,
             error: Callable[[str], BaseException] | None = None
             ) -> "FaultPlan":
        """Raise a (default transient) error at matching operations."""
        self.rules.append(FaultRule(op=op, kind="error", after=after,
                                    times=times, p=p, error=error))
        return self

    def short_read(self, after: int = 0, times: int | None = 1,
                   keep: float = 0.5, p: float = 1.0,
                   op: str = "*") -> "FaultPlan":
        """Truncate read/``readv`` results to a ``keep`` fraction.

        ``op`` narrows the rule to ``"read"`` or ``"readv"``; the default
        wildcard covers both (write-side consultations never see
        short-read rules).
        """
        self.rules.append(FaultRule(op=op, kind="short_read",
                                    after=after, times=times, p=p,
                                    keep=keep))
        return self

    def torn_write(self, after: int = 0, times: int | None = 1,
                   keep: float = 0.5, crash: bool = False,
                   p: float = 1.0, op: str = "*") -> "FaultPlan":
        """Apply only a ``keep`` prefix of a write/``writev``, then fail.

        With ``crash=True`` the failure is a :class:`CrashError` (the
        process died mid-transfer); otherwise a transient error that a
        retry layer may heal by re-issuing the full write.  ``op``
        narrows the rule to ``"write"`` or ``"writev"``; the default
        wildcard covers both (read-side consultations never see
        torn-write rules).
        """
        error = (lambda d: CrashError(f"injected crash: {d}")) if crash \
            else None
        self.rules.append(FaultRule(op=op, kind="torn_write",
                                    after=after, times=times, p=p,
                                    keep=keep, error=error))
        return self

    def crash(self, site: str, after: int = 0) -> "FaultPlan":
        """Simulate process death at a store op or named crash site."""
        self.rules.append(FaultRule(op=site, kind="crash", after=after,
                                    times=1))
        return self

    def hook(self, site: str, action: Callable[[], None], after: int = 0,
             times: int | None = 1) -> "FaultPlan":
        """Run ``action`` when fault site ``site`` is reached (without
        raising).  The chaos primitive: hooks at the ``server.kill.*``
        sites of :data:`KILL_SITES` take whole I/O servers down at a
        precise instant mid-operation.
        """
        if site not in ALL_SITES:
            raise DRXError(f"unknown fault site {site!r}; known sites: "
                           f"{sorted(ALL_SITES)}")
        self.rules.append(FaultRule(op=site, kind="hook", after=after,
                                    times=times, action=action))
        return self

    def kill_server(self, fs, sid: int, site: str, after: int = 0,
                    wipe: bool = False) -> "FaultPlan":
        """Convenience: kill server ``sid`` of file system ``fs`` when
        ``site`` is reached for the ``after``-th time."""
        return self.hook(site, lambda: fs.kill_server(sid, wipe=wipe),
                         after=after)

    # -- consultation ------------------------------------------------------
    def _match(self, name: str, kinds: tuple[str, ...],
               wildcard: bool) -> FaultRule | None:
        for rule in self.rules:
            if rule.kind not in kinds:
                continue
            if rule.op != name and not (wildcard and rule.op == "*"):
                continue
            rule.seen += 1
            if rule.seen <= rule.after:
                continue
            if rule.times is not None and rule.fired >= rule.times:
                continue
            if rule.p < 1.0 and self.rng.random() >= rule.p:
                continue
            rule.fired += 1
            self.injected[name] = self.injected.get(name, 0) + 1
            return rule
        return None

    def consult(self, op: str) -> FaultRule | None:
        """Called by :class:`FaultInjector` before each store operation.

        Returns the firing rule (the injector applies its effect), or
        ``None`` to proceed normally.
        """
        self.hits[op] = self.hits.get(op, 0) + 1
        if op in ("read", "readv"):
            kinds = ("error", "crash", "short_read")
        elif op in ("write", "writev"):
            kinds = ("error", "crash", "torn_write")
        else:
            kinds = ("error", "crash")
        return self._match(op, kinds, wildcard=True)

    def check(self, op: str) -> None:
        """Raise-if-armed form of :meth:`consult` for simple hooks.

        Used by substrate components that cannot apply partial effects
        (e.g. the PFS :class:`~repro.pfs.server.IOServer`): any firing
        rule raises its error immediately.
        """
        rule = self.consult(op)
        if rule is not None:
            raise rule.make_error(op)

    def note_site(self, site: str) -> None:
        """Fault-point callback (the plan must be active to receive it)."""
        if site not in ALL_SITES:
            raise DRXError(f"unknown fault site {site!r}; known sites: "
                           f"{sorted(ALL_SITES)}")
        self.hits[site] = self.hits.get(site, 0) + 1
        rule = self._match(site, ("crash", "error", "hook"), wildcard=False)
        if rule is None:
            return
        if rule.kind == "hook":
            if rule.action is not None:
                rule.action()
            return
        raise rule.make_error(f"at crash point {site!r}")

    # -- activation (arms crash sites) -------------------------------------
    def __enter__(self) -> "FaultPlan":
        faultpoints.activate(self)
        return self

    def __exit__(self, *exc) -> None:
        faultpoints.deactivate(self)


# ---------------------------------------------------------------------------
# fault-injecting store decorator
# ---------------------------------------------------------------------------

class FaultInjector(ByteStore):
    """Wrap any byte store and subject every entry point to a plan.

    Scalar *and* vectored operations consult the plan, so the coalesced
    ``readv``/``writev`` paths see exactly the fault exposure of the
    legacy per-chunk paths.  Effects:

    * ``error`` — raise before touching the inner store (nothing applied);
    * ``crash`` — raise :class:`CrashError` before touching the store;
    * ``short_read`` — forward the read, return only a ``keep`` prefix;
    * ``torn_write`` — forward only a ``keep`` prefix of the bytes (for
      ``writev``, a prefix of the flat buffer split across extents),
      then raise — the on-store state is genuinely torn.

    The wrapper shares the inner store's :class:`StoreStats` so layered
    decorators present one accounting surface.
    """

    #: Fault schedules are op-count ordered: the n-th matching call
    #: fires the n-th rule.  Concurrent access would scramble that
    #: order, so the executor layers keep injected stores serial.
    deterministic_only = True

    def __init__(self, inner: ByteStore, plan: FaultPlan) -> None:
        super().__init__()
        self._inner = inner
        self.plan = plan
        self.stats = inner.stats

    # -- reads -------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        rule = self.plan.consult("read")
        if rule is not None and rule.kind in ("error", "crash"):
            raise rule.make_error(f"read({offset}, {length})")
        data = self._inner.read(offset, length)
        if rule is not None:                       # short read
            return data[:int(length * rule.keep)]
        return data

    def readv(self, extents: Sequence[Extent]) -> bytes:
        rule = self.plan.consult("readv")
        if rule is not None and rule.kind in ("error", "crash"):
            raise rule.make_error(f"readv({len(extents)} extents)")
        data = self._inner.readv(extents)
        if rule is not None:                       # short vectored read
            return data[:int(len(data) * rule.keep)]
        return data

    # -- writes ------------------------------------------------------------
    def write(self, offset: int, data) -> None:
        rule = self.plan.consult("write")
        if rule is None:
            self._inner.write(offset, data)
            return
        if rule.kind == "torn_write":
            mv = memoryview(data)
            kept = int(len(mv) * rule.keep)
            if kept:
                self._inner.write(offset, mv[:kept])
            raise rule.make_error(
                f"torn write({offset}): {kept}/{len(mv)} bytes applied")
        raise rule.make_error(f"write({offset}, {len(memoryview(data))})")

    def writev(self, extents: Sequence[Extent], data) -> None:
        rule = self.plan.consult("writev")
        if rule is None:
            self._inner.writev(extents, data)
            return
        if rule.kind == "torn_write":
            mv = memoryview(data)
            kept = int(len(mv) * rule.keep)
            applied: list[Extent] = []
            pos = 0
            for off, length in extents:
                take = min(length, kept - pos)
                if take <= 0:
                    break
                applied.append((off, take))
                pos += take
            if applied:
                self._inner.writev(applied, mv[:pos])
            raise rule.make_error(
                f"torn writev: {pos}/{len(mv)} bytes over "
                f"{len(applied)}/{len(extents)} extents applied")
        raise rule.make_error(f"writev({len(extents)} extents)")

    # -- control operations ------------------------------------------------
    def replace(self, data) -> None:
        rule = self.plan.consult("replace")
        if rule is not None:
            raise rule.make_error(f"replace({len(memoryview(data))} bytes)")
        self._inner.replace(data)

    def truncate(self, size: int) -> None:
        rule = self.plan.consult("truncate")
        if rule is not None:
            raise rule.make_error(f"truncate({size})")
        self._inner.truncate(size)

    def flush(self) -> None:
        rule = self.plan.consult("flush")
        if rule is not None:
            raise rule.make_error("flush()")
        self._inner.flush()

    def read_alternates(self, offset: int, length: int) -> list[bytes]:
        # arbitration reads are out of band: they exist to recover from
        # faults, so the plan is not consulted
        return self._inner.read_alternates(offset, length)

    def repair(self, offset: int, data) -> None:
        # the heal side of arbitration is equally out of band
        self._inner.repair(offset, data)

    @property
    def size(self) -> int:
        return self._inner.size

    def close(self) -> None:
        self._inner.close()


# ---------------------------------------------------------------------------
# retry backoff policy
# ---------------------------------------------------------------------------

class BackoffPolicy:
    """The library-wide retry backoff: bounded exponential growth with
    deterministic, seeded jitter.

    The delay for attempt *n* (counting from 1) is ``base_delay *
    2**(n-1)`` capped at ``max_delay`` and scaled by a jitter factor in
    ``[0.5, 1.5)`` drawn from a seeded RNG — deterministic for a given
    seed, so tests and benchmarks replay identically.  Shared by
    :class:`RetryingByteStore` (store-level retries) and the serve
    client stub (:class:`repro.serve.DRXClient`), so the whole stack
    retries with one policy instead of ad-hoc timers.
    """

    def __init__(self, base_delay: float = 0.0005,
                 max_delay: float = 0.05, seed: int = 0) -> None:
        if base_delay < 0 or max_delay < 0:
            raise DRXFileError("backoff delays must be >= 0")
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Sleep duration before re-issuing attempt ``attempt`` (>= 1).

        Each call advances the jitter RNG, so successive retries of one
        schedule never collide even at the cap.
        """
        base = min(self.max_delay,
                   self.base_delay * (2 ** (max(1, attempt) - 1)))
        return base * (0.5 + self._rng.random())


# ---------------------------------------------------------------------------
# retrying store decorator
# ---------------------------------------------------------------------------

class RetryingByteStore(ByteStore):
    """Retry transient store faults with backoff + deterministic jitter.

    Every operation is re-issued up to ``max_retries`` times when
    :func:`is_transient` (or the supplied classifier) says the failure
    may heal; scalar and vectored reads additionally verify the returned
    length, so injected (or real) short reads are retried rather than
    silently zero-padded downstream.  Positional writes are idempotent,
    which is what makes re-issuing a torn ``writev`` safe.

    The backoff for attempt *n* is ``base_delay * 2**(n-1)`` capped at
    ``max_delay`` and scaled by a jitter factor in ``[0.5, 1.5)`` drawn
    from a seeded RNG — deterministic for a given seed, so tests and
    benchmarks replay identically.  ``retries`` and ``giveups`` land in
    the shared :class:`StoreStats`.
    """

    def __init__(self, inner: ByteStore, max_retries: int = 5,
                 base_delay: float = 0.0005, max_delay: float = 0.05,
                 seed: int = 0,
                 sleep: Callable[[float], None] | None = None,
                 classify: Callable[[BaseException], bool] = is_transient
                 ) -> None:
        super().__init__()
        if max_retries < 0:
            raise DRXFileError(f"max_retries must be >= 0, got {max_retries}")
        self._inner = inner
        self.max_retries = max_retries
        self.backoff = BackoffPolicy(base_delay, max_delay, seed)
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._sleep = time.sleep if sleep is None else sleep
        self._classify = classify
        self.stats = inner.stats
        # a retry layer over an order-sensitive store is itself
        # order-sensitive (and its backoff RNG is sequential anyway)
        self.deterministic_only = getattr(inner, "deterministic_only",
                                          False)

    def _run(self, describe: str, attempt: Callable[[], object]):
        tries = 0
        while True:
            try:
                return attempt()
            except BaseException as exc:
                if not isinstance(exc, Exception) \
                        or not self._classify(exc) \
                        or tries >= self.max_retries:
                    self.stats.giveups += 1
                    raise
                tries += 1
                self.stats.retries += 1
                self._sleep(self.backoff.delay(tries))

    # -- reads (with length verification) ----------------------------------
    def read(self, offset: int, length: int) -> bytes:
        def attempt() -> bytes:
            data = self._inner.read(offset, length)
            if len(data) != length:
                self.stats.short_reads += 1
                raise PFSError(
                    f"short read at {offset}: got {len(data)}/{length} bytes"
                )
            return data
        return self._run("read", attempt)

    def readv(self, extents: Sequence[Extent]) -> bytes:
        want = sum(length for _off, length in extents)

        def attempt() -> bytes:
            data = self._inner.readv(extents)
            if len(data) != want:
                self.stats.short_reads += 1
                raise PFSError(
                    f"short readv: got {len(data)}/{want} bytes over "
                    f"{len(extents)} extents"
                )
            return data
        return self._run("readv", attempt)

    # -- writes / control --------------------------------------------------
    def write(self, offset: int, data) -> None:
        self._run("write", lambda: self._inner.write(offset, data))

    def writev(self, extents: Sequence[Extent], data) -> None:
        self._run("writev", lambda: self._inner.writev(extents, data))

    def replace(self, data) -> None:
        self._run("replace", lambda: self._inner.replace(data))

    def truncate(self, size: int) -> None:
        self._run("truncate", lambda: self._inner.truncate(size))

    def flush(self) -> None:
        self._run("flush", lambda: self._inner.flush())

    def read_alternates(self, offset: int, length: int) -> list[bytes]:
        # best-effort by definition — no retry semantics to add
        return self._inner.read_alternates(offset, length)

    def repair(self, offset: int, data) -> None:
        # best-effort by definition — no retry semantics to add
        self._inner.repair(offset, data)

    @property
    def size(self) -> int:
        return self._inner.size

    def close(self) -> None:
        self._inner.close()


# ---------------------------------------------------------------------------
# per-chunk integrity
# ---------------------------------------------------------------------------

class ChecksumGuard:
    """Verify / maintain the per-chunk CRC32 table of an array.

    The table lives in the meta-data document
    (:attr:`~repro.core.metadata.DRXMeta.chunk_crcs`) and is committed
    with it; this guard is the in-memory read/write interface the Mpool
    (fault-in, write-back) and the streaming I/O paths share.  Chunks
    without an entry — never written, or created before checksums were
    enabled — verify vacuously.
    """

    def __init__(self, crcs: dict[int, int]) -> None:
        self.crcs = crcs
        self.checked = 0       #: verifications performed
        self.failures = 0      #: mismatches detected
        self.arbitrated = 0    #: mismatches resolved from a replica copy

    def record(self, address: int, data) -> None:
        """Update the stored CRC after writing chunk ``address``."""
        self.crcs[int(address)] = chunk_crc(data)

    def check(self, address: int, data) -> None:
        """Verify chunk ``address`` against its stored CRC (if any)."""
        want = self.crcs.get(int(address))
        if want is None:
            return
        self.checked += 1
        got = chunk_crc(data)
        if got != want:
            self.failures += 1
            raise ChecksumError(
                f"chunk {address}: CRC32 mismatch "
                f"(stored {want:#010x}, read {got:#010x}) — torn or "
                f"corrupted chunk"
            )

    def check_or_arbitrate(self, address: int, data, store=None,
                           offset: int | None = None,
                           length: int | None = None):
        """Verify chunk ``address``; on a CRC mismatch, *arbitrate*
        among the store's replica copies.

        A torn replica fan-out (or at-rest corruption of one copy)
        leaves the copies diverging; the recorded CRC identifies the
        committed version.  Each alternate the store can still reach
        (:meth:`~repro.drx.storage.ByteStore.read_alternates`) is
        checked against the stored CRC; the first match is returned —
        and written back over the bad copy on a best-effort basis
        through the store's out-of-band
        :meth:`~repro.drx.storage.ByteStore.repair` path (no write
        stats, no fault injection — this is a read, and the simulator's
        counters must stay faithful), so a later rebuild or scrub sees
        converged replicas.  With no matching alternate the original
        :class:`ChecksumError` propagates.

        Returns the verified bytes (``data`` itself when it checked
        out, the arbitrated copy otherwise).
        """
        try:
            self.check(address, data)
            return data
        except ChecksumError:
            if store is None or offset is None or length is None:
                raise
            want = self.crcs.get(int(address))
            heal = getattr(store, "repair", None) or store.write
            for alt in store.read_alternates(offset, length):
                if chunk_crc(alt) != want:
                    continue
                self.arbitrated += 1
                try:                     # heal the divergent copy
                    heal(offset, alt)
                except Exception:
                    pass                 # degraded but readable is fine
                return alt
            raise


@dataclass
class ScrubReport:
    """Result of a full-container integrity scan (``DRXFile.scrub()``)."""

    total_chunks: int
    checked: int                           #: chunks with a CRC, verified
    corrupt: list[int] = field(default_factory=list)
    unverified: int = 0                    #: chunks without a stored CRC

    @property
    def ok(self) -> bool:
        return not self.corrupt

    def __str__(self) -> str:
        state = "OK" if self.ok else f"CORRUPT {self.corrupt}"
        return (f"scrub: {self.total_chunks} chunks, {self.checked} "
                f"verified, {self.unverified} unverified — {state}")
