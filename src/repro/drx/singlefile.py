"""Single-file DRX format: meta-data embedded as the file header.

The paper's §V: "It is possible to combine the meta-data file and the
principal array file as a single file in which the meta-data information
is kept as the header content of the DRXMP file but this is left for
future work."  This module implements that future work.

Layout of a version-2 ``.drx`` single file::

    [ 0.. 8  )  magic  b"DRXSF\\x02\\x00\\x00"
    [ 8..40  )  header slot 0   <u64 generation, u64 meta offset,
    [40..72  )  header slot 1    u64 meta length, u32 meta CRC32,
                                 u32 slot CRC32>
    [72..R   )  meta-data blob regions (double-buffered while they fit)
    [ R..    )  chunk payloads: chunk q at R + q * chunk_nbytes

Commits are crash-consistent: each flush writes the new meta-data blob
into the *shadow* blob region (the one the current header does not point
at), makes it durable, then flips the generation-stamped, CRC-guarded
header slot ``generation % 2``.  A crash at any byte of the sequence
leaves at least one slot whose CRC validates and whose blob's CRC
validates — the reader picks the highest valid generation, so it sees
either the old or the new committed state, never garbage.

``R`` (``header_reserve``, default 64 KiB) fixes where chunks start, so
the array stays append-only.  While the blob fits half the reserve the
two regions alternate inside it; once it outgrows the reserve it
*relocates to the tail* of the file — past the chunk region — with the
slot pointer updated (the HDF5-superblock trick), the new tail copy
staggered past the previous one so the commit never tears the blob it is
replacing.  Chunk appends then overwrite stale tail copies, and the next
flush writes a fresh one.

Version-1 files (``b"DRXSF\\x01"`` magic, single unguarded offset/length
pointer at byte 8) are still read; the first writable commit upgrades
them in place to version 2 (that one-time migration is the only commit
that is *not* crash-atomic).

:class:`DRXSingleFile` wraps :class:`~repro.drx.drxfile.DRXFile` — same
API, same chunk bytes, different container.
"""

from __future__ import annotations

import pathlib
import struct
import zlib
from math import prod
from typing import Sequence

import numpy as np

from ..core.chunking import chunk_bounds_for
from ..core.errors import (
    DRXFileExistsError,
    DRXFileError,
    DRXFileNotFoundError,
    DRXFormatError,
)
from ..core.metadata import DRXMeta, DRXType
from .codec import get_codec
from .drxfile import DRXFile, StoreWrapper
from .faultpoints import crash_point
from .storage import ByteStore, MemoryByteStore, PosixByteStore

__all__ = ["DRXSingleFile", "SINGLE_MAGIC", "SINGLE_MAGIC_V1",
           "DEFAULT_HEADER_RESERVE"]

SINGLE_MAGIC = b"DRXSF\x02\x00\x00"
SINGLE_MAGIC_V1 = b"DRXSF\x01\x00\x00"
#: One header slot: generation, meta offset, meta length, meta CRC32 —
#: followed by the CRC32 of those four fields (the slot's own guard).
_SLOT_BODY_FMT = "<QQQI"
_SLOT_BODY_SIZE = struct.calcsize(_SLOT_BODY_FMT)
_SLOT_SIZE = _SLOT_BODY_SIZE + 4
_SLOT0_OFF = len(SINGLE_MAGIC)
_HEADER_END = _SLOT0_OFF + 2 * _SLOT_SIZE
# legacy v1 header: magic + <QQ> offset/length pointer
_HEADER_FMT_V1 = "<QQ"
_HEADER_END_V1 = len(SINGLE_MAGIC_V1) + struct.calcsize(_HEADER_FMT_V1)
DEFAULT_HEADER_RESERVE = 64 * 1024


def _pack_slot(generation: int, offset: int, length: int,
               meta_crc: int) -> bytes:
    body = struct.pack(_SLOT_BODY_FMT, generation, offset, length, meta_crc)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def _unpack_slot(raw: bytes) -> tuple[int, int, int, int] | None:
    """Decode one header slot; ``None`` when its guard CRC fails."""
    body, (guard,) = raw[:_SLOT_BODY_SIZE], struct.unpack(
        "<I", raw[_SLOT_BODY_SIZE:_SLOT_SIZE])
    if zlib.crc32(body) & 0xFFFFFFFF != guard:
        return None
    return struct.unpack(_SLOT_BODY_FMT, body)


class _OffsetByteStore(ByteStore):
    """A byte store view shifted by a fixed base offset.

    Presents the chunk region of the single file as a zero-based store so
    the inner :class:`DRXFile` needs no changes.
    """

    def __init__(self, inner: ByteStore, base: int) -> None:
        super().__init__()
        self._inner = inner
        self._base = base
        # one accounting surface per physical file
        self.stats = inner.stats
        # an order-sensitive inner store (fault injection) keeps the
        # concurrency layers serial through the offset view too
        self.deterministic_only = getattr(inner, "deterministic_only",
                                          False)

    def read(self, offset: int, length: int) -> bytes:
        return self._inner.read(self._base + offset, length)

    def write(self, offset: int, data) -> None:
        self._inner.write(self._base + offset, data)

    def readv(self, extents) -> bytes:
        return self._inner.readv(
            [(self._base + off, length) for off, length in extents])

    def writev(self, extents, data) -> None:
        self._inner.writev(
            [(self._base + off, length) for off, length in extents], data)

    @property
    def size(self) -> int:
        return max(0, self._inner.size - self._base)

    def truncate(self, size: int) -> None:
        self._inner.truncate(self._base + size)

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        # lifetime owned by the wrapping DRXSingleFile
        pass


class DRXSingleFile:
    """A DRX array stored as one self-describing file."""

    SUFFIX = ".drx"

    def __init__(self, meta: DRXMeta, raw: ByteStore, writable: bool,
                 header_reserve: int, cache_pages: int = 64,
                 generation: int = 0,
                 blob_span: tuple[int, int] | None = None,
                 header_version: int = 2,
                 executor="auto") -> None:
        if header_reserve < _HEADER_END + 64:
            raise DRXFileError(
                f"header reserve {header_reserve} too small "
                f"(need >= {_HEADER_END + 64})"
            )
        self._raw = raw
        self._reserve = header_reserve
        self._writable = writable
        #: generation of the last committed header slot (0 = none yet)
        self._generation = generation
        #: (offset, length) of the committed meta blob, for overlap
        #: avoidance when commits relocate to the tail
        self._blob_span = blob_span
        #: 1 for a legacy file whose first commit must migrate the header
        self._header_version = header_version
        #: lower bound (relative to the chunk region) for tail-resident
        #: blob placement; raised during extend() so the committed copy
        #: is recommitted past the *projected* chunk-region end before
        #: new chunk payloads can clobber it
        self._tail_floor = 0
        chunk_region = _OffsetByteStore(raw, header_reserve)
        # The inner DRXFile manages chunks + cache; meta persistence is
        # overridden to land in this container's header/tail.
        self._inner = DRXFile(meta, chunk_region, meta_store=None,
                              writable=writable, cache_pages=cache_pages,
                              executor=executor)
        self._inner._persist_meta = self._persist_meta  # type: ignore[method-assign]
        # A compressed array's slot allocator must route around a
        # tail-resident committed meta blob (offsets are chunk-region
        # relative); re-registering the same span is a no-op.
        cstore = self._inner._codec_store
        if cstore is not None and blob_span is not None \
                and blob_span[0] >= header_reserve:
            cstore.table.reserve(blob_span[0] - header_reserve,
                                 blob_span[1])
            cstore.table.mark_committed()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | pathlib.Path | None,
               bounds: Sequence[int], chunk_shape: Sequence[int],
               dtype: str | np.dtype | type = DRXType.DOUBLE,
               overwrite: bool = False,
               header_reserve: int = DEFAULT_HEADER_RESERVE,
               cache_pages: int = 64, checksums: bool = False,
               codec: str = "none",
               store_wrapper: StoreWrapper | None = None,
               executor="auto") -> "DRXSingleFile":
        meta = DRXMeta.create(bounds, chunk_shape, dtype)
        meta.extra["container"] = "single-file"
        meta.codec = get_codec(codec, meta.dtype.itemsize).name
        if checksums:
            meta.chunk_crcs = {}
        if path is None:
            raw: ByteStore = MemoryByteStore()
        else:
            path = cls._with_suffix(path)
            if path.exists() and not overwrite:
                raise DRXFileExistsError(f"array {path} already exists")
            raw = PosixByteStore(path, "w+")
        if store_wrapper is not None:
            raw = store_wrapper(raw, "data")
        # magic + zeroed (hence invalid-CRC) slots, so a crash before the
        # first commit is recognizable as an uncommitted file
        raw.write(0, SINGLE_MAGIC + bytes(2 * _SLOT_SIZE))
        obj = cls(meta, raw, writable=True, header_reserve=header_reserve,
                  cache_pages=cache_pages, executor=executor)
        obj._persist_meta()
        return obj

    @classmethod
    def open(cls, path: str | pathlib.Path, mode: str = "r",
             cache_pages: int = 64,
             store_wrapper: StoreWrapper | None = None,
             executor="auto") -> "DRXSingleFile":
        if mode not in ("r", "r+"):
            raise DRXFileError(f"mode must be 'r' or 'r+', got {mode!r}")
        path = cls._with_suffix(path)
        if not path.exists():
            raise DRXFileNotFoundError(f"no array named {path}")
        raw: ByteStore = PosixByteStore(path, mode)
        if store_wrapper is not None:
            raw = store_wrapper(raw, "data")
        meta, reserve, gen, span, version = cls._read_header(raw)
        return cls(meta, raw, writable=(mode == "r+"),
                   header_reserve=reserve, cache_pages=cache_pages,
                   generation=gen, blob_span=span, header_version=version,
                   executor=executor)

    @classmethod
    def _with_suffix(cls, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        if path.suffix != cls.SUFFIX:
            path = path.with_name(path.name + cls.SUFFIX)
        return path

    @classmethod
    def _read_header(cls, raw: ByteStore
                     ) -> tuple[DRXMeta, int, int, tuple[int, int], int]:
        """Decode the header: ``(meta, reserve, generation, blob span,
        header version)``.

        A version-2 header is recovered from whichever slot holds the
        highest generation that validates end to end (slot CRC *and*
        blob CRC *and* a parseable document) — a torn commit therefore
        falls back to the previous generation instead of failing.
        """
        head = raw.read(0, _HEADER_END)
        magic = head[:len(SINGLE_MAGIC)]
        if magic == SINGLE_MAGIC_V1:
            return cls._read_header_v1(raw, head)
        if magic != SINGLE_MAGIC:
            raise DRXFormatError("not a single-file DRX array (bad magic)")
        candidates = []
        for i in range(2):
            base = _SLOT0_OFF + i * _SLOT_SIZE
            slot = _unpack_slot(head[base:base + _SLOT_SIZE])
            if slot is not None and slot[0] > 0:
                candidates.append(slot)
        candidates.sort(key=lambda s: s[0], reverse=True)
        for gen, off, length, crc in candidates:
            if length == 0 or off < _HEADER_END:
                continue
            blob = raw.read(off, length)
            if zlib.crc32(blob) & 0xFFFFFFFF != crc:
                continue
            try:
                meta = DRXMeta.from_bytes(blob)
            except DRXFormatError:
                continue
            reserve = int(meta.extra.get("header_reserve",
                                         DEFAULT_HEADER_RESERVE))
            return meta, reserve, gen, (off, length), 2
        raise DRXFormatError(
            "corrupt single-file header (no slot commits a valid "
            "meta-data blob)"
        )

    @classmethod
    def _read_header_v1(cls, raw: ByteStore, head: bytes
                        ) -> tuple[DRXMeta, int, int, tuple[int, int], int]:
        """Legacy single-pointer header (format version 1)."""
        off, length = struct.unpack_from(_HEADER_FMT_V1, head,
                                         len(SINGLE_MAGIC_V1))
        if length == 0 or off < _HEADER_END_V1:
            raise DRXFormatError("corrupt single-file header")
        meta = DRXMeta.from_bytes(raw.read(off, length))
        reserve = int(meta.extra.get("header_reserve",
                                     DEFAULT_HEADER_RESERVE))
        return meta, reserve, 0, (off, length), 1

    def close(self) -> None:
        if self._inner._closed:
            return
        self._inner.close()      # flushes chunks + persists meta
        self._raw.close()

    def flush(self) -> None:
        self._inner.flush()

    def __enter__(self) -> "DRXSingleFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # meta persistence (shadow-slot commit; reserve while it fits, tail
    # once it doesn't)
    # ------------------------------------------------------------------
    def _blob_offset(self, generation: int, blob_len: int,
                     data_nbytes: int) -> int:
        """Where generation ``generation``'s meta blob goes.

        Inside the reserve the two generations alternate between the two
        halves, so a commit never writes over the blob the live header
        slot points at.  In the tail the new copy starts at the
        chunk-region end (or ``_tail_floor`` if an extension is in
        flight) and is staggered past the previous committed copy when
        the two would overlap.
        """
        half = (self._reserve - _HEADER_END) // 2
        if blob_len <= half:
            return _HEADER_END + (generation % 2) * half
        offset = self._reserve + max(data_nbytes, self._tail_floor)
        if self._blob_span is not None:
            prev_off, prev_len = self._blob_span
            if prev_off < offset + blob_len and offset < prev_off + prev_len:
                offset = prev_off + prev_len
        return offset

    def _persist_meta(self) -> None:
        if not self._writable:
            return
        meta = self._inner.meta
        meta.extra["container"] = "single-file"
        meta.extra["header_reserve"] = self._reserve
        cstore = self._inner._codec_store
        if cstore is not None:
            # commit the slot-allocation table with the document (same
            # copy-on-write discipline as the two-file container)
            self._inner._pool.drain_writebehind()
            crash_point("codec.slots.written")
            meta.chunk_slots = cstore.table.serialize()
        blob = meta.to_bytes()
        blob_crc = zlib.crc32(blob) & 0xFFFFFFFF
        gen = self._generation + 1
        # tail placement must clear the *physical* chunk-region extent —
        # for a compressed array that is the slot table's high-water
        # mark, which can sit above or below the logical data_nbytes
        offset = self._blob_offset(gen, len(blob),
                                   self._inner.data_extent_nbytes())
        if self._header_version == 1:
            # One-time in-place migration of a legacy header.  The v1
            # blob may occupy the very bytes the slot table needs, so
            # this single commit is NOT crash-atomic (documented); every
            # subsequent commit is.
            self._raw.write(offset, blob)
            self._raw.flush()
            header = bytearray(SINGLE_MAGIC + bytes(2 * _SLOT_SIZE))
            base = _SLOT0_OFF + (gen % 2) * _SLOT_SIZE
            header[base:base + _SLOT_SIZE] = _pack_slot(
                gen, offset, len(blob), blob_crc)
            self._raw.write(0, bytes(header))
            self._raw.flush()
            self._header_version = 2
        else:
            crash_point("sf.meta.before_blob")
            self._raw.write(offset, blob)
            crash_point("sf.meta.after_blob")
            self._raw.flush()        # blob durable before the slot flips
            slot = _pack_slot(gen, offset, len(blob), blob_crc)
            crash_point("sf.header.before_slot")
            self._raw.write(_SLOT0_OFF + (gen % 2) * _SLOT_SIZE, slot)
            crash_point("sf.header.after_slot")
            self._raw.flush()
        self._generation = gen
        self._blob_span = (offset, len(blob))
        if cstore is not None:
            cstore.table.mark_committed()
            if offset >= self._reserve:
                # the newly committed blob sits in the tail: fence its
                # span off from future chunk-slot allocations (the stale
                # previous copy's span is released by the reserve swap)
                cstore.table.reserve(offset - self._reserve, len(blob))
                cstore.table.mark_committed()

    # ------------------------------------------------------------------
    # delegation: same API as DRXFile
    # ------------------------------------------------------------------
    @property
    def meta(self) -> DRXMeta:
        return self._inner.meta

    @property
    def shape(self) -> tuple[int, ...]:
        return self._inner.shape

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        return self._inner.chunk_shape

    @property
    def dtype(self) -> np.dtype:
        return self._inner.dtype

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def num_chunks(self) -> int:
        return self._inner.num_chunks

    @property
    def cache_stats(self):
        return self._inner.cache_stats

    @property
    def attrs(self):
        """User attributes (persisted in the header on flush/close)."""
        return self._inner.meta.attrs

    @property
    def checksums_enabled(self) -> bool:
        return self._inner.checksums_enabled

    @property
    def codec(self) -> str:
        return self._inner.codec

    @property
    def codec_stats(self):
        return self._inner.codec_stats

    def data_extent_nbytes(self) -> int:
        return self._inner.data_extent_nbytes()

    def compact(self, max_moves: int | None = None):
        """Defragment a compressed array's chunk region (see
        :meth:`repro.drx.drxfile.DRXFile.compact`).  Tail-resident meta
        blobs stay fenced off via the table's reserved span."""
        return self._inner.compact(max_moves)

    def scrub(self, batch_chunks: int = 256):
        """Verify every committed chunk against its stored CRC32 (see
        :meth:`repro.drx.drxfile.DRXFile.scrub`)."""
        return self._inner.scrub(batch_chunks)

    def get(self, index):
        return self._inner.get(index)

    def put(self, index, value) -> None:
        self._inner.put(index, value)

    def read(self, lo=None, hi=None, order: str = "C") -> np.ndarray:
        return self._inner.read(lo, hi, order)

    def write(self, lo, values) -> None:
        self._inner.write(lo, values)

    def read_slab(self, start, stride, count, order: str = "C") -> np.ndarray:
        return self._inner.read_slab(start, stride, count, order)

    def write_slab(self, start, stride, values) -> None:
        self._inner.write_slab(start, stride, values)

    def read_all(self, order: str = "C") -> np.ndarray:
        return self._inner.read_all(order)

    def extend(self, dim: int, by: int) -> None:
        if self._writable and self._blob_span is not None \
                and self._inner._codec_store is None \
                and self._blob_span[0] >= self._reserve:
            # The committed blob lives in the tail, where the extension
            # is about to materialize chunk payloads.  Recommit it past
            # the *projected* chunk-region end first, so a crash during
            # the extension still leaves a readable file.  (Compressed
            # arrays skip this: their slot allocator routes new payloads
            # around the blob's reserved span instead.)
            meta = self._inner.meta
            bounds = list(meta.element_bounds)
            bounds[dim] += by
            new_chunks = prod(chunk_bounds_for(bounds, meta.chunk_shape))
            new_end = new_chunks * meta.chunk_nbytes
            try:
                if self._blob_span[0] < self._reserve + new_end:
                    self._tail_floor = new_end
                    self._persist_meta()
                self._inner.extend(dim, by)
            finally:
                self._tail_floor = 0
            return
        self._inner.extend(dim, by)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DRXSingleFile(shape={self.shape}, "
                f"chunks={self.chunk_shape}, reserve={self._reserve})")

    # ------------------------------------------------------------------
    # conversion to/from the two-file format
    # ------------------------------------------------------------------
    @classmethod
    def from_pair(cls, pair: DRXFile, path: str | pathlib.Path | None,
                  header_reserve: int = DEFAULT_HEADER_RESERVE,
                  codec: str | None = None) -> "DRXSingleFile":
        """Repackage a two-file array into a single file (chunk bytes and
        axial vectors are carried verbatim; the codec follows the source
        unless overridden — payloads cross the boundary decompressed, so
        conversions can also recompress with a different codec)."""
        pair.flush()
        out = cls.create(path, pair.shape, pair.chunk_shape,
                         pair.meta.dtype_name, overwrite=True,
                         header_reserve=header_reserve,
                         codec=pair.meta.codec if codec is None else codec)
        out._inner.meta.eci = pair.meta.eci.copy()
        out._inner.meta.element_bounds = pair.meta.element_bounds
        total = pair.meta.num_chunks * pair.meta.chunk_nbytes
        if total:
            blob = pair._data.readv([(0, total)])
            out._inner._data.writev([(0, total)], blob)
        out._persist_meta()
        return out

    def to_pair(self, path: str | pathlib.Path,
                overwrite: bool = False,
                codec: str | None = None) -> DRXFile:
        """Repackage into the classic ``.xmd``/``.xta`` pair (codec
        carried over unless overridden)."""
        self.flush()
        out = DRXFile.create(path, self.shape, self.chunk_shape,
                             self.meta.dtype_name, overwrite=overwrite,
                             codec=self.meta.codec if codec is None
                             else codec)
        out.meta.eci = self.meta.eci.copy()
        out.meta.element_bounds = self.meta.element_bounds
        out.meta.extra.pop("container", None)
        total = self.meta.num_chunks * self.meta.chunk_nbytes
        if total:
            blob = self._inner._data.readv([(0, total)])
            out._data.writev([(0, total)], blob)
        out._persist_meta()
        return out
