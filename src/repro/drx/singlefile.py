"""Single-file DRX format: meta-data embedded as the file header.

The paper's §V: "It is possible to combine the meta-data file and the
principal array file as a single file in which the meta-data information
is kept as the header content of the DRXMP file but this is left for
future work."  This module implements that future work.

Layout of a ``.drx`` single file::

    [ 0..8   )  magic  b"DRXSF\\x01\\x00\\x00"
    [ 8..16  )  u64 LE: byte offset of the current meta-data blob
    [16..24  )  u64 LE: byte length of the current meta-data blob
    [24..R   )  header reserve (meta-data lives here while it fits)
    [ R..    )  chunk payloads: chunk q at R + q * chunk_nbytes

``R`` (``header_reserve``, default 64 KiB) fixes where chunks start, so
the array stays append-only.  The meta-data grows with every extension
(axial records accumulate); while it fits the reserve it is rewritten in
place, and once it outgrows the reserve it *relocates to the tail* of the
file — past the chunk region — with the header pointer updated (the
HDF5-superblock trick).  Chunk appends then overwrite the stale tail
copy, and the next flush writes a fresh tail; the header pointer is only
advanced after the new copy is durable, so a reader always finds a valid
blob.

:class:`DRXSingleFile` wraps :class:`~repro.drx.drxfile.DRXFile` — same
API, same chunk bytes, different container.
"""

from __future__ import annotations

import pathlib
import struct
from typing import Sequence

import numpy as np

from ..core.errors import (
    DRXFileExistsError,
    DRXFileError,
    DRXFileNotFoundError,
    DRXFormatError,
)
from ..core.metadata import DRXMeta, DRXType
from .drxfile import DRXFile
from .storage import ByteStore, MemoryByteStore, PosixByteStore

__all__ = ["DRXSingleFile", "SINGLE_MAGIC", "DEFAULT_HEADER_RESERVE"]

SINGLE_MAGIC = b"DRXSF\x01\x00\x00"
_HEADER_FMT = "<QQ"          # meta offset, meta length
_HEADER_END = len(SINGLE_MAGIC) + struct.calcsize(_HEADER_FMT)
DEFAULT_HEADER_RESERVE = 64 * 1024


class _OffsetByteStore(ByteStore):
    """A byte store view shifted by a fixed base offset.

    Presents the chunk region of the single file as a zero-based store so
    the inner :class:`DRXFile` needs no changes.
    """

    def __init__(self, inner: ByteStore, base: int) -> None:
        super().__init__()
        self._inner = inner
        self._base = base
        # one accounting surface per physical file
        self.stats = inner.stats

    def read(self, offset: int, length: int) -> bytes:
        return self._inner.read(self._base + offset, length)

    def write(self, offset: int, data) -> None:
        self._inner.write(self._base + offset, data)

    def readv(self, extents) -> bytes:
        return self._inner.readv(
            [(self._base + off, length) for off, length in extents])

    def writev(self, extents, data) -> None:
        self._inner.writev(
            [(self._base + off, length) for off, length in extents], data)

    @property
    def size(self) -> int:
        return max(0, self._inner.size - self._base)

    def truncate(self, size: int) -> None:
        self._inner.truncate(self._base + size)

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        # lifetime owned by the wrapping DRXSingleFile
        pass


class DRXSingleFile:
    """A DRX array stored as one self-describing file."""

    SUFFIX = ".drx"

    def __init__(self, meta: DRXMeta, raw: ByteStore, writable: bool,
                 header_reserve: int, cache_pages: int = 64) -> None:
        if header_reserve < _HEADER_END + 64:
            raise DRXFileError(
                f"header reserve {header_reserve} too small "
                f"(need >= {_HEADER_END + 64})"
            )
        self._raw = raw
        self._reserve = header_reserve
        self._writable = writable
        chunk_region = _OffsetByteStore(raw, header_reserve)
        # The inner DRXFile manages chunks + cache; meta persistence is
        # overridden to land in this container's header/tail.
        self._inner = DRXFile(meta, chunk_region, meta_store=None,
                              writable=writable, cache_pages=cache_pages)
        self._inner._persist_meta = self._persist_meta  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | pathlib.Path | None,
               bounds: Sequence[int], chunk_shape: Sequence[int],
               dtype: str | np.dtype | type = DRXType.DOUBLE,
               overwrite: bool = False,
               header_reserve: int = DEFAULT_HEADER_RESERVE,
               cache_pages: int = 64) -> "DRXSingleFile":
        meta = DRXMeta.create(bounds, chunk_shape, dtype)
        meta.extra["container"] = "single-file"
        if path is None:
            raw: ByteStore = MemoryByteStore()
        else:
            path = cls._with_suffix(path)
            if path.exists() and not overwrite:
                raise DRXFileExistsError(f"array {path} already exists")
            raw = PosixByteStore(path, "w+")
        obj = cls(meta, raw, writable=True, header_reserve=header_reserve,
                  cache_pages=cache_pages)
        obj._persist_meta()
        return obj

    @classmethod
    def open(cls, path: str | pathlib.Path, mode: str = "r",
             cache_pages: int = 64) -> "DRXSingleFile":
        if mode not in ("r", "r+"):
            raise DRXFileError(f"mode must be 'r' or 'r+', got {mode!r}")
        path = cls._with_suffix(path)
        if not path.exists():
            raise DRXFileNotFoundError(f"no array named {path}")
        raw = PosixByteStore(path, mode)
        meta, reserve = cls._read_header(raw)
        return cls(meta, raw, writable=(mode == "r+"),
                   header_reserve=reserve, cache_pages=cache_pages)

    @classmethod
    def _with_suffix(cls, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        if path.suffix != cls.SUFFIX:
            path = path.with_name(path.name + cls.SUFFIX)
        return path

    @classmethod
    def _read_header(cls, raw: ByteStore) -> tuple[DRXMeta, int]:
        head = raw.read(0, _HEADER_END)
        if head[:len(SINGLE_MAGIC)] != SINGLE_MAGIC:
            raise DRXFormatError("not a single-file DRX array (bad magic)")
        off, length = struct.unpack_from(_HEADER_FMT, head,
                                         len(SINGLE_MAGIC))
        if length == 0 or off < _HEADER_END:
            raise DRXFormatError("corrupt single-file header")
        meta = DRXMeta.from_bytes(raw.read(off, length))
        reserve = int(meta.extra.get("header_reserve",
                                     DEFAULT_HEADER_RESERVE))
        return meta, reserve

    def close(self) -> None:
        if self._inner._closed:
            return
        self._inner.close()      # flushes chunks + persists meta
        self._raw.close()

    def flush(self) -> None:
        self._inner.flush()

    def __enter__(self) -> "DRXSingleFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # meta persistence (header while it fits, tail once it doesn't)
    # ------------------------------------------------------------------
    def _persist_meta(self) -> None:
        if not self._writable:
            return
        meta = self._inner.meta
        meta.extra["container"] = "single-file"
        meta.extra["header_reserve"] = self._reserve
        blob = meta.to_bytes()
        if _HEADER_END + len(blob) <= self._reserve:
            offset = _HEADER_END
        else:
            # relocate past the chunk region (append-only tail copy)
            offset = self._reserve + meta.data_nbytes
        self._raw.write(offset, blob)
        header = SINGLE_MAGIC + struct.pack(_HEADER_FMT, offset, len(blob))
        self._raw.write(0, header)
        self._raw.flush()

    # ------------------------------------------------------------------
    # delegation: same API as DRXFile
    # ------------------------------------------------------------------
    @property
    def meta(self) -> DRXMeta:
        return self._inner.meta

    @property
    def shape(self) -> tuple[int, ...]:
        return self._inner.shape

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        return self._inner.chunk_shape

    @property
    def dtype(self) -> np.dtype:
        return self._inner.dtype

    @property
    def rank(self) -> int:
        return self._inner.rank

    @property
    def num_chunks(self) -> int:
        return self._inner.num_chunks

    @property
    def cache_stats(self):
        return self._inner.cache_stats

    @property
    def attrs(self):
        """User attributes (persisted in the header on flush/close)."""
        return self._inner.meta.attrs

    def get(self, index):
        return self._inner.get(index)

    def put(self, index, value) -> None:
        self._inner.put(index, value)

    def read(self, lo=None, hi=None, order: str = "C") -> np.ndarray:
        return self._inner.read(lo, hi, order)

    def write(self, lo, values) -> None:
        self._inner.write(lo, values)

    def read_slab(self, start, stride, count, order: str = "C") -> np.ndarray:
        return self._inner.read_slab(start, stride, count, order)

    def write_slab(self, start, stride, values) -> None:
        self._inner.write_slab(start, stride, values)

    def read_all(self, order: str = "C") -> np.ndarray:
        return self._inner.read_all(order)

    def extend(self, dim: int, by: int) -> None:
        self._inner.extend(dim, by)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DRXSingleFile(shape={self.shape}, "
                f"chunks={self.chunk_shape}, reserve={self._reserve})")

    # ------------------------------------------------------------------
    # conversion to/from the two-file format
    # ------------------------------------------------------------------
    @classmethod
    def from_pair(cls, pair: DRXFile, path: str | pathlib.Path | None,
                  header_reserve: int = DEFAULT_HEADER_RESERVE
                  ) -> "DRXSingleFile":
        """Repackage a two-file array into a single file (chunk bytes and
        axial vectors are carried verbatim)."""
        pair.flush()
        out = cls.create(path, pair.shape, pair.chunk_shape,
                         pair.meta.dtype_name, overwrite=True,
                         header_reserve=header_reserve)
        out._inner.meta.eci = pair.meta.eci.copy()
        out._inner.meta.element_bounds = pair.meta.element_bounds
        total = pair.meta.num_chunks * pair.meta.chunk_nbytes
        if total:
            blob = pair._data.readv([(0, total)])
            out._inner._data.writev([(0, total)], blob)
        out._persist_meta()
        return out

    def to_pair(self, path: str | pathlib.Path,
                overwrite: bool = False) -> DRXFile:
        """Repackage into the classic ``.xmd``/``.xta`` pair."""
        self.flush()
        out = DRXFile.create(path, self.shape, self.chunk_shape,
                             self.meta.dtype_name, overwrite=overwrite)
        out.meta.eci = self.meta.eci.copy()
        out.meta.element_bounds = self.meta.element_bounds
        out.meta.extra.pop("container", None)
        total = self.meta.num_chunks * self.meta.chunk_nbytes
        if total:
            blob = self._inner._data.readv([(0, total)])
            out._data.writev([(0, total)], blob)
        out._persist_meta()
        return out
