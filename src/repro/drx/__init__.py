"""``repro.drx`` — the serial Disk Resident eXtendible array library.

DRX files live in any POSIX file system as an ``.xmd``/``.xta`` pair and
are accessed through an Mpool buffer cache; the memory-resident variant
keeps the same chunked axial-vector layout in core.  Arrays may be
transparently compressed per chunk (:mod:`repro.drx.codec` +
:mod:`repro.drx.chunkalloc`); ``codec="none"`` keeps the historical
direct-placement layout bit for bit.
"""

from .chunkalloc import Slot, SlotTable
from .codec import (
    Codec,
    CodecStats,
    codec_names,
    default_codec_name,
    get_codec,
)
from .drxfile import DRXFile
from .faultpoints import CRASH_SITES, crash_point
from .inspect import describe, load_meta, verify
from .ioplan import IOPlan, Run, Visit, coalesce_addresses, plan_box, plan_slab
from .memarray import MemExtendibleArray
from .mpool import Mpool, MpoolStats
from .resilience import (
    ChecksumGuard,
    FaultInjector,
    FaultPlan,
    RetryingByteStore,
    ScrubReport,
    chunk_crc,
    is_transient,
)
from .singlefile import DRXSingleFile
from .storage import (
    ByteStore,
    CompressedByteStore,
    MemoryByteStore,
    PFSByteStore,
    PosixByteStore,
    StoreStats,
)

__all__ = [
    "DRXFile",
    "Codec",
    "CodecStats",
    "get_codec",
    "codec_names",
    "default_codec_name",
    "Slot",
    "SlotTable",
    "CompressedByteStore",
    "describe",
    "verify",
    "load_meta",
    "DRXSingleFile",
    "MemExtendibleArray",
    "Mpool",
    "MpoolStats",
    "ByteStore",
    "MemoryByteStore",
    "PosixByteStore",
    "PFSByteStore",
    "StoreStats",
    "IOPlan",
    "Run",
    "Visit",
    "coalesce_addresses",
    "plan_box",
    "plan_slab",
    "FaultPlan",
    "FaultInjector",
    "RetryingByteStore",
    "ChecksumGuard",
    "ScrubReport",
    "chunk_crc",
    "is_transient",
    "crash_point",
    "CRASH_SITES",
]
