"""DRX: the serial disk-resident extendible array file.

A DRX array named ``xyz`` is a pair of files, exactly as in the paper's
section IV: ``xyz.xmd`` (meta-data: rank, dtype, chunk shape,
instantaneous bounds, the axial vectors) and ``xyz.xta`` (native binary
chunk payloads, appended in allocation order).  The chunk at linear
address ``q*`` occupies bytes ``[q* * chunk_nbytes, (q*+1) * chunk_nbytes)``
of the ``.xta`` file; elements within a chunk are row-major.

Reads and writes of arbitrary rectilinear sub-arrays go through an
Mpool buffer cache.  Sub-array transfers visit chunks in increasing
linear-address order — a sequential scan of the file, per the paper's
observation that "independent I/O of sub-array regions are done as
sequential scan of the chunks on disk" — and use the inverse mapping to
scatter each chunk into its place in the requested in-memory order
(``order="C"`` or ``"F"``), which is the paper's on-the-fly
transposition.

Every sub-array request is first compiled by :mod:`repro.drx.ioplan`
into maximal contiguous address runs.  Small requests are served through
the pool with batched faulting (one vectored store call for all missing
chunks); requests larger than the pool **stream**: they move whole runs
with ``readv``/``writev`` and never churn the cache, overlaying dirty
cached pages on reads and refreshing stale cached pages on writes so the
pool and the bypass stay coherent.  ``coalesce=False`` restores the
legacy one-store-call-per-chunk execution (used by equivalence tests and
the coalescing benchmark).
"""

from __future__ import annotations

import os
import pathlib
from typing import Callable, Sequence

import numpy as np

from ..core import faultsites
from ..core.chunking import box_shape, chunk_of, validate_box
from ..core.errors import (
    DRXClosedError,
    DRXFileExistsError,
    DRXFileError,
    DRXFileNotFoundError,
    DRXIndexError,
)
from ..core.executor import IOExecutor, default_executor, resolve_executor
from ..core.hyperslab import Hyperslab
from ..core.metadata import DRXMeta, DRXType
from .chunkalloc import SlotTable
from .codec import CodecStats, get_codec
from .faultpoints import crash_point
from .ioplan import IOPlan, PlanCache, coalesce_addresses
from .mpool import Mpool
from .resilience import ChecksumGuard, ScrubReport, chunk_crc
from .storage import (
    ByteStore,
    CompressedByteStore,
    MemoryByteStore,
    PFSByteStore,
    PosixByteStore,
)

__all__ = ["DRXFile"]

#: Hook wrapping each backing store at create/open time — receives the
#: store and its role (``"data"`` or ``"meta"``), returns the store to
#: use.  The fault-injection and retry decorators of
#: :mod:`repro.drx.resilience` plug in here.
StoreWrapper = Callable[[ByteStore, str], ByteStore]


class DRXFile:
    """A disk-resident extendible array (serial access).

    Use the :meth:`create` / :meth:`open` class methods; instances are
    context managers::

        with DRXFile.create("climate", bounds=(360, 180), chunk_shape=(8, 8)) as a:
            a.write((0, 0), np.ones((10, 10)))
            a.extend(dim=1, by=20)
    """

    XMD_SUFFIX = ".xmd"
    XTA_SUFFIX = ".xta"

    def __init__(self, meta: DRXMeta, data_store: ByteStore,
                 meta_store: ByteStore | None, writable: bool,
                 cache_pages: int = 64, coalesce: bool = True,
                 executor: "IOExecutor | None | str" = "auto",
                 readahead: int | None = None,
                 tune: str | None = None) -> None:
        self.meta = meta
        self._meta_store = meta_store
        self._writable = writable
        # background executor for Mpool read-ahead / write-behind and
        # the streaming pipelines; ``"auto"`` = the process-wide
        # ``drx``-tier pool sized by ``DRX_EXECUTOR_THREADS``.  Stores
        # whose fault schedules depend on exact op order run serial.
        self._executor = resolve_executor(executor, tier="drx")
        if getattr(data_store, "deterministic_only", False):
            self._executor = None
        #: the advisor's report when ``tune="auto"`` was requested
        self.tuning_advice = None
        self._owned_executor: "IOExecutor | None" = None
        if tune not in (None, "", "off"):
            if tune != "auto":
                raise DRXFileError(
                    f"tune must be 'auto' or None, got {tune!r}")
            readahead = self._auto_tune(data_store, executor, readahead)
        # Per-chunk compression: the data store is wrapped in a
        # CompressedByteStore exposing the logical chunk address space,
        # so the pool (decompressed pages), the streaming pipelines and
        # the conversions below work unchanged.  CRC verification then
        # happens *inside* the adapter — over the compressed payload at
        # its physical slot — so the file-level guard stays None.  The
        # (de)compression CPU of batched transfers is offloaded onto the
        # dedicated ``codec`` executor tier: a pure-CPU leaf tier (codec
        # tasks never submit further work), so it cannot deadlock with
        # the ``drx`` tier that calls into the adapter.
        self._guard = None
        self._codec_store: CompressedByteStore | None = None
        if meta.codec != "none":
            table = SlotTable.deserialize(meta.chunk_slots) \
                if meta.chunk_slots is not None else SlotTable()
            guard = None if meta.chunk_crcs is None \
                else ChecksumGuard(meta.chunk_crcs)
            codec_ex = None if self._executor is None \
                else default_executor("codec")
            data_store = CompressedByteStore(
                data_store, get_codec(meta.codec, meta.dtype.itemsize),
                table, meta.chunk_nbytes,
                logical_nbytes=meta.data_nbytes,
                guard=guard, executor=codec_ex)
            self._codec_store = data_store
        elif meta.chunk_crcs is not None:
            # checksums are on iff the meta-data carries a CRC table;
            # the guard is shared by the pool (fault-in / write-back)
            # and the streaming paths below.
            self._guard = ChecksumGuard(meta.chunk_crcs)
        self._data = data_store
        self._pool = Mpool(data_store, meta.chunk_nbytes,
                           max_pages=max(1, cache_pages),
                           guard=self._guard, executor=self._executor,
                           readahead=8 if readahead is None
                           else max(0, int(readahead)))
        # compiled-request memo: generation-keyed, so extend() (which
        # bumps eci.generation) invalidates it for free; hit/miss
        # counters land in the data store's StoreStats.
        self._plans = PlanCache(stats=getattr(self._data, "stats", None))
        self._coalesce = coalesce
        self._closed = False
        # -- lifecycle hooks (serve daemon, replication tooling) --------
        #: successful meta-data commits through this handle; an
        #: acknowledged write is durable iff a commit with a higher
        #: epoch than its acknowledgement succeeded afterwards.
        self._commit_epoch = 0
        self._commit_hooks: list[Callable[[int], None]] = []

    def _auto_tune(self, data_store: ByteStore,
                   executor: "IOExecutor | None | str",
                   readahead: int | None) -> int | None:
        """``tune="auto"``: price the default scan workload and apply
        the runtime-adjustable knobs.

        The read-ahead window is taken from the advice unless the
        caller pinned one; the executor width is upgraded only when the
        caller asked for ``"auto"`` *and* ``DRX_EXECUTOR_THREADS`` is
        unset (an explicit environment choice always wins — it is how
        the test matrix forces the exact historical serial paths).
        Creation-time knobs (chunk shape, stripe, codec) cannot change
        on a live handle; they stay visible in :attr:`tuning_advice`.
        """
        from ..tuning.advisor import Workload, advise, pfs_geometry
        stripe, nservers = pfs_geometry(data_store)
        w = Workload(
            bounds=self.meta.element_bounds,
            chunk_shape=self.meta.chunk_shape, dtype=self.meta.dtype,
            stripe_size=stripe, nservers=nservers)
        cur_threads = getattr(self._executor, "threads", 0) \
            if self._executor is not None else 0
        advice = advise(w, current={
            "codec": self.meta.codec,
            "executor_threads": cur_threads,
            "readahead": 8 if readahead is None else int(readahead),
        })
        self.tuning_advice = advice
        threads = advice.chosen("executor_threads")
        if (executor == "auto" and os.environ.get("DRX_EXECUTOR_THREADS")
                is None and self._executor is not None
                and threads != cur_threads and threads > 0):
            self._owned_executor = IOExecutor(threads, name="drx-tuned")
            self._executor = self._owned_executor
        if readahead is None:
            readahead = int(advice.chosen("readahead"))
        return readahead

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str | pathlib.Path | None,
               bounds: Sequence[int], chunk_shape: Sequence[int],
               dtype: str | np.dtype | type = DRXType.DOUBLE,
               overwrite: bool = False, cache_pages: int = 64,
               fill: float | int | complex = 0,
               coalesce: bool = True, checksums: bool = False,
               codec: str = "none",
               store_wrapper: StoreWrapper | None = None,
               executor: "IOExecutor | None | str" = "auto",
               readahead: int | None = None,
               tune: str | None = None) -> "DRXFile":
        """Create a new extendible array file.

        ``path`` is the array name without suffix (``None`` creates a
        purely in-memory array for scratch use).  ``bounds`` are the
        initial element bounds, ``chunk_shape`` the chunk shape.
        ``checksums=True`` maintains per-chunk CRC32 checksums in the
        meta-data, verified on every fault-in and streamed read (and by
        :meth:`scrub`).  ``codec`` selects transparent per-chunk
        compression (:mod:`repro.drx.codec`; ``"none"`` keeps the
        historical direct-placement layout bit-identical).
        ``store_wrapper`` decorates the backing stores (fault injection,
        retries) before any byte moves.
        """
        meta = DRXMeta.create(bounds, chunk_shape, dtype)
        meta.codec = get_codec(codec, meta.dtype.itemsize).name
        if checksums:
            meta.chunk_crcs = {}
        if path is None:
            data: ByteStore = MemoryByteStore()
            meta_store: ByteStore | None = None
        else:
            path = pathlib.Path(path)
            xmd = path.with_name(path.name + cls.XMD_SUFFIX)
            xta = path.with_name(path.name + cls.XTA_SUFFIX)
            if not overwrite and (xmd.exists() or xta.exists()):
                raise DRXFileExistsError(f"array {path} already exists")
            meta_store = PosixByteStore(xmd, "w+")
            data = PosixByteStore(xta, "w+")
        if store_wrapper is not None:
            data = store_wrapper(data, "data")
            if meta_store is not None:
                meta_store = store_wrapper(meta_store, "meta")
        obj = cls(meta, data, meta_store, writable=True,
                  cache_pages=cache_pages, coalesce=coalesce,
                  executor=executor, readahead=readahead, tune=tune)
        if fill != 0:
            obj._fill_chunks(range(meta.num_chunks), fill)
        obj._persist_meta()
        return obj

    @classmethod
    def open(cls, path: str | pathlib.Path, mode: str = "r",
             cache_pages: int = 64, coalesce: bool = True,
             store_wrapper: StoreWrapper | None = None,
             executor: "IOExecutor | None | str" = "auto",
             readahead: int | None = None,
             tune: str | None = None) -> "DRXFile":
        """Open an existing array file (``mode`` is ``"r"`` or ``"r+"``).

        The paper: "The file must exist otherwise it returns an error."
        Checksumming resumes automatically when the meta-data carries a
        CRC table; ``store_wrapper`` decorates the backing stores as in
        :meth:`create`.
        """
        if mode not in ("r", "r+"):
            raise DRXFileError(f"mode must be 'r' or 'r+', got {mode!r}")
        path = pathlib.Path(path)
        xmd = path.with_name(path.name + cls.XMD_SUFFIX)
        xta = path.with_name(path.name + cls.XTA_SUFFIX)
        if not xmd.exists() or not xta.exists():
            raise DRXFileNotFoundError(f"no array named {path}")
        meta = DRXMeta.from_bytes(xmd.read_bytes())
        meta_store = PosixByteStore(xmd, mode if mode == "r" else "r+")
        data = PosixByteStore(xta, mode)
        if store_wrapper is not None:
            data = store_wrapper(data, "data")
            meta_store = store_wrapper(meta_store, "meta")
        return cls(meta, data, meta_store, writable=(mode == "r+"),
                   cache_pages=cache_pages, coalesce=coalesce,
                   executor=executor, readahead=readahead, tune=tune)

    @classmethod
    def create_pfs(cls, fs, name: str,
                   bounds: Sequence[int], chunk_shape: Sequence[int],
                   dtype: str | np.dtype | type = DRXType.DOUBLE,
                   cache_pages: int = 64, fill: float | int | complex = 0,
                   coalesce: bool = True, checksums: bool = False,
                   codec: str = "none",
                   store_wrapper: StoreWrapper | None = None,
                   executor: "IOExecutor | None | str" = "auto",
                   readahead: int | None = None,
                   tune: str | None = None) -> "DRXFile":
        """Create an array backed by a simulated parallel file system.

        The ``.xmd`` / ``.xta`` pair becomes two striped PFS files in
        ``fs``'s namespace.  On a replicated file system the array
        survives single-server failures: data reads fail over between
        replicas, and with ``checksums=True`` the CRC table additionally
        arbitrates between diverging copies after a torn fan-out —
        including compressed arrays (``codec``), whose CRCs cover the
        compressed payload at its physical slot.
        """
        meta = DRXMeta.create(bounds, chunk_shape, dtype)
        meta.codec = get_codec(codec, meta.dtype.itemsize).name
        if checksums:
            meta.chunk_crcs = {}
        meta_store: ByteStore = PFSByteStore(
            fs.create(name + cls.XMD_SUFFIX))
        data: ByteStore = PFSByteStore(fs.create(name + cls.XTA_SUFFIX))
        if store_wrapper is not None:
            data = store_wrapper(data, "data")
            meta_store = store_wrapper(meta_store, "meta")
        obj = cls(meta, data, meta_store, writable=True,
                  cache_pages=cache_pages, coalesce=coalesce,
                  executor=executor, readahead=readahead, tune=tune)
        if fill != 0:
            obj._fill_chunks(range(meta.num_chunks), fill)
        obj._persist_meta()
        return obj

    @classmethod
    def open_pfs(cls, fs, name: str, mode: str = "r",
                 cache_pages: int = 64, coalesce: bool = True,
                 store_wrapper: StoreWrapper | None = None,
                 executor: "IOExecutor | None | str" = "auto",
                 readahead: int | None = None,
                 tune: str | None = None) -> "DRXFile":
        """Open a PFS-backed array created by :meth:`create_pfs`."""
        if mode not in ("r", "r+"):
            raise DRXFileError(f"mode must be 'r' or 'r+', got {mode!r}")
        xmd = fs.open(name + cls.XMD_SUFFIX)
        meta = DRXMeta.from_bytes(xmd.read(0, xmd.size))
        meta_store: ByteStore = PFSByteStore(xmd)
        data: ByteStore = PFSByteStore(fs.open(name + cls.XTA_SUFFIX))
        if store_wrapper is not None:
            data = store_wrapper(data, "data")
            meta_store = store_wrapper(meta_store, "meta")
        return cls(meta, data, meta_store, writable=(mode == "r+"),
                   cache_pages=cache_pages, coalesce=coalesce,
                   executor=executor, readahead=readahead, tune=tune)

    def close(self) -> None:
        """Flush and close both files (idempotent)."""
        if self._closed:
            return
        if self._writable:
            self.flush()
        self._data.close()
        if self._meta_store is not None:
            self._meta_store.close()
        self._closed = True
        if self._owned_executor is not None:
            self._owned_executor.shutdown()
            self._owned_executor = None

    def flush(self) -> None:
        """Write back dirty chunks and persist the meta-data."""
        self._require_open()
        self._pool.flush()
        if self._writable:
            self._persist_meta()

    def _persist_meta(self) -> None:
        """Commit the meta-data crash-consistently.

        The whole document (axial vectors, bounds, checksum table) goes
        through the store's atomic ``replace`` — for a POSIX file that
        is temp-file + fsync + rename, so a crash at any instant leaves
        either the previous or the new ``.xmd``, never a torn one.

        For a compressed array the slot-allocation table commits with
        the document: its copy-on-write discipline guarantees that no
        extent the *previous* committed table references has been
        overwritten, so a crash anywhere (``codec.slots.written`` being
        the canonical point: payloads down, table not) reopens the old
        table with every old payload intact.  Only after the replace
        lands are the table's quarantined extents released for reuse.
        """
        if self._meta_store is None:
            if self._codec_store is not None:
                # no durable meta-data (scratch in-memory array): the
                # in-memory table is the only truth, so every commit
                # completes immediately and quarantined extents recycle
                self._pool.drain_writebehind()
                self._codec_store.table.mark_committed()
            self._note_committed()
            return
        if self._codec_store is not None:
            # quiesce background write-backs so the serialized table
            # matches the payloads actually on the store
            self._pool.drain_writebehind()
            crash_point("codec.slots.written")
            self.meta.chunk_slots = self._codec_store.table.serialize()
        crash_point("xmd.commit.begin")
        blob = self.meta.to_bytes()
        self._meta_store.replace(blob)
        crash_point("xmd.commit.end")
        if self._codec_store is not None:
            self._codec_store.table.mark_committed()
        self._note_committed()

    def _note_committed(self) -> None:
        self._commit_epoch += 1
        for hook in self._commit_hooks:
            hook(self._commit_epoch)

    @property
    def commit_epoch(self) -> int:
        """Successful meta-data commits through this handle.  The serve
        daemon stamps write acknowledgements with the epoch current at
        ack time; a later flush/close response with a higher epoch
        promises those writes are durable."""
        return self._commit_epoch

    def register_commit_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(epoch)`` after every successful meta commit (the
        serve daemon's durability notifications)."""
        self._commit_hooks.append(hook)

    def abandon(self) -> None:
        """Drop the handle the way a crash would: no flush, no commit.

        Dirty cached pages are discarded (unflushed state is lost,
        exactly as the page cache of a killed process), already-issued
        background write-backs are awaited, and the backing stores are
        closed best-effort.  Idempotent, and safe to call instead of
        :meth:`close` on any error path that must not publish
        half-applied state.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.abandon()
        except Exception:               # noqa: BLE001 - crash path
            pass
        for store in (self._data, self._meta_store):
            if store is None:
                continue
            try:
                store.close()
            except Exception:           # noqa: BLE001 - crash path
                pass

    def __enter__(self) -> "DRXFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise DRXClosedError("operation on closed DRX file")

    def _require_writable(self) -> None:
        if not self._writable:
            raise DRXFileError("array opened read-only")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Current element bounds."""
        return self.meta.element_bounds

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        return self.meta.chunk_shape

    @property
    def dtype(self) -> np.dtype:
        return self.meta.dtype

    @property
    def rank(self) -> int:
        return self.meta.rank

    @property
    def num_chunks(self) -> int:
        return self.meta.num_chunks

    @property
    def cache_stats(self):
        return self._pool.stats

    @property
    def codec(self) -> str:
        """The array's compression codec name (``"none"`` = plain)."""
        return self.meta.codec

    @property
    def codec_stats(self) -> "CodecStats | None":
        """Compression counters — raw vs ``compressed_bytes``, achieved
        ``ratio``, encode/decode wall-time — or ``None`` for a plain
        array."""
        if self._codec_store is None:
            return None
        return self._codec_store.codec_stats

    def data_extent_nbytes(self) -> int:
        """Physical size of the chunk region: the slot table's append
        high-water mark for a compressed array, the logical
        ``data_nbytes`` for a plain one."""
        if self._codec_store is None:
            return self.meta.data_nbytes
        return self._codec_store.data_extent_nbytes()

    @property
    def attrs(self):
        """User attributes (persisted to the .xmd on flush/close)."""
        return self.meta.attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DRXFile(shape={self.shape}, chunks={self.chunk_shape}, "
                f"dtype={self.meta.dtype_name})")

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def extend(self, dim: int, by: int) -> None:
        """Extend dimension ``dim`` by ``by`` elements.

        Appends any newly required chunk segment to the ``.xta`` file;
        no existing byte moves (the paper's central property).  New
        elements read as zero until written.
        """
        self._require_open()
        self._require_writable()
        self.meta.extend_elements(dim, by)
        # Nothing to write eagerly: reads of unwritten chunks see zeros
        # (sparse semantics); the logical size still grows so that a
        # whole-file scan covers the new segment.
        needed = self.meta.data_nbytes
        if self._data.size < needed:
            self._data.truncate(needed)
        self._persist_meta()

    def _fill_chunks(self, addresses, value) -> None:
        payload = np.full(self.meta.chunk_elems, value,
                          dtype=self.dtype).tobytes()
        nb = self.meta.chunk_nbytes
        addrs = np.sort(np.fromiter((int(q) for q in addresses),
                                    dtype=np.int64))
        starts, counts = coalesce_addresses(addrs)
        extents = [(int(s) * nb, int(c) * nb)
                   for s, c in zip(starts, counts)]
        self._data.writev(extents, payload * len(addrs))
        if self._guard is not None:
            for q in addrs:
                self._guard.record(int(q), payload)

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def get(self, index: Sequence[int]) -> np.generic:
        """Read one element (computed access: F* then in-chunk offset)."""
        self._require_open()
        self._check_element(index)
        ci, local = chunk_of(index, self.chunk_shape)
        q = self.meta.eci.address(ci)
        buf = self._pool.get(q)
        try:
            arr = buf.view(self.dtype).reshape(self.chunk_shape)
            return arr[local].copy()
        finally:
            self._pool.put(q)

    def put(self, index: Sequence[int], value) -> None:
        """Write one element."""
        self._require_open()
        self._require_writable()
        self._check_element(index)
        ci, local = chunk_of(index, self.chunk_shape)
        q = self.meta.eci.address(ci)
        buf = self._pool.get(q)
        try:
            arr = buf.view(self.dtype).reshape(self.chunk_shape)
            arr[local] = value
        finally:
            self._pool.put(q, dirty=True)

    def _check_element(self, index: Sequence[int]) -> None:
        if len(index) != self.rank:
            raise DRXIndexError(f"index rank {len(index)} != {self.rank}")
        for i, n in zip(index, self.shape):
            if not 0 <= i < n:
                raise DRXIndexError(
                    f"element {tuple(index)} outside bounds {self.shape}"
                )

    # ------------------------------------------------------------------
    # sub-array access
    # ------------------------------------------------------------------
    def read(self, lo: Sequence[int] | None = None,
             hi: Sequence[int] | None = None,
             order: str = "C") -> np.ndarray:
        """Read the sub-array ``[lo, hi)`` in the requested memory order.

        Chunks are visited in increasing linear address (a sequential
        file scan); each is scattered into the output box, so asking for
        ``order="F"`` costs no extra I/O pass (on-the-fly transposition).
        The visit list is coalesced into contiguous runs: requests that
        fit the pool fault every missing chunk with one vectored store
        call, larger ones stream run by run past the pool.
        """
        self._require_open()
        lo = tuple(lo) if lo is not None else (0,) * self.rank
        hi = tuple(hi) if hi is not None else self.shape
        validate_box(lo, hi, self.shape)
        if order not in ("C", "F"):
            raise DRXIndexError(f"order must be 'C' or 'F', got {order!r}")
        plan = self._plans.box(self.meta.eci, lo, hi, self.chunk_shape,
                               self.meta.chunk_nbytes)
        out = np.zeros(box_shape(lo, hi), dtype=self.dtype, order=order)
        self._execute_read(plan, out)
        return out

    def write(self, lo: Sequence[int], values: np.ndarray) -> None:
        """Write ``values`` into the box starting at ``lo``.

        Fully covered chunks of oversized requests are streamed straight
        to the store in coalesced runs; partially covered chunks always
        read-modify-write through the pool.
        """
        self._require_open()
        self._require_writable()
        values = np.asarray(values, dtype=self.dtype)
        lo = tuple(lo)
        hi = tuple(l + s for l, s in zip(lo, values.shape))
        validate_box(lo, hi, self.shape)
        plan = self._plans.box(self.meta.eci, lo, hi, self.chunk_shape,
                               self.meta.chunk_nbytes)
        self._execute_write(plan, values)

    def read_all(self, order: str = "C") -> np.ndarray:
        """The whole principal array as one in-memory array."""
        return self.read(None, None, order)

    # ------------------------------------------------------------------
    # strided hyperslab access (HDF5-style selections)
    # ------------------------------------------------------------------
    def read_slab(self, start, stride, count,
                  order: str = "C") -> np.ndarray:
        """Read a strided hyperslab ``(start, stride, count)``.

        Returns a dense array of shape ``count`` holding the selected
        lattice ``A[start + i*stride]``.  Only the chunks intersecting
        the slab's bounding box are touched, and the lattice is picked
        with strided NumPy slicing (no per-element loop).
        """
        self._require_open()
        slab = Hyperslab.build(start, stride, count)
        slab.validate(self.shape)
        plan = self._plans.slab(self.meta.eci, slab, self.chunk_shape,
                                self.meta.chunk_nbytes)
        out = np.zeros(slab.shape, dtype=self.dtype, order=order)
        self._execute_read(plan, out)
        return out

    def write_slab(self, start, stride, values: np.ndarray) -> None:
        """Write a dense array onto the strided lattice ``(start,
        stride, values.shape)``."""
        self._require_open()
        self._require_writable()
        values = np.asarray(values, dtype=self.dtype)
        slab = Hyperslab.build(start, stride, values.shape)
        slab.validate(self.shape)
        plan = self._plans.slab(self.meta.eci, slab, self.chunk_shape,
                                self.meta.chunk_nbytes)
        self._execute_write(plan, values)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    @property
    def checksums_enabled(self) -> bool:
        """Whether per-chunk CRC32 checksums are maintained (for a
        compressed array the guard lives inside the codec store)."""
        return self.meta.chunk_crcs is not None

    def scrub(self, batch_chunks: int = 256) -> ScrubReport:
        """Scan the whole container and verify every chunk's checksum.

        Reads the chunk region in coalesced batches (``batch_chunks``
        chunks per vectored call) and compares each chunk against the
        CRC table committed in the meta-data.  Chunks without a stored
        CRC (never written, or written before checksums were enabled)
        are counted as unverified.  Dirty cached pages are flushed first
        on writable handles so the scan sees the committed state.

        Returns a :class:`~repro.drx.resilience.ScrubReport` whose
        ``corrupt`` list pinpoints torn or bit-rotted chunks by linear
        address; it never raises on a mismatch.
        """
        self._require_open()
        if self._writable:
            self.flush()
        if self._codec_store is not None:
            return self._scrub_compressed(batch_chunks)
        crcs = self.meta.chunk_crcs or {}
        nb = self.meta.chunk_nbytes
        total = self.num_chunks
        corrupt: list[int] = []
        checked = unverified = 0
        for start in range(0, total, max(1, batch_chunks)):
            count = min(batch_chunks, total - start)
            blob = memoryview(self._data.readv([(start * nb, count * nb)]))
            for i in range(count):
                addr = start + i
                want = crcs.get(addr)
                if want is None:
                    unverified += 1
                    continue
                checked += 1
                if chunk_crc(blob[i * nb:(i + 1) * nb]) != want:
                    corrupt.append(addr)
        return ScrubReport(total_chunks=total, checked=checked,
                           corrupt=corrupt, unverified=unverified)

    def _scrub_compressed(self, batch_chunks: int) -> ScrubReport:
        """Scrub a compressed array: the CRC covers the framed
        compressed payload at its physical slot, so the scan reads the
        *inner* store at the slot extents (no decompression needed)."""
        crcs = self.meta.chunk_crcs or {}
        cs = self._codec_store
        total = self.num_chunks
        corrupt: list[int] = []
        checked = unverified = 0
        todo: list[tuple[int, object, int]] = []
        for addr in range(total):
            slot = cs.table.get(addr)
            want = crcs.get(addr)
            if want is None or slot is None or slot.length == 0:
                unverified += 1
                continue
            todo.append((addr, slot, want))
        step = max(1, batch_chunks)
        for start in range(0, len(todo), step):
            batch = todo[start:start + step]
            blob = memoryview(cs.inner.readv(
                [(s.offset, s.length) for _a, s, _w in batch]))
            pos = 0
            for addr, slot, want in batch:
                payload = blob[pos:pos + slot.length]
                pos += slot.length
                checked += 1
                if chunk_crc(payload) != want:
                    corrupt.append(addr)
        return ScrubReport(total_chunks=total, checked=checked,
                           corrupt=corrupt, unverified=unverified)

    # ------------------------------------------------------------------
    # compaction (compressed arrays)
    # ------------------------------------------------------------------
    def compact(self, max_moves: int | None = None) -> dict:
        """Reclaim free space in the compressed chunk region.

        Copy-on-write rewrites leave holes behind; this pass migrates
        the highest-placed slots into the lowest committed-free holes,
        commits the moved table, trims the append high-water mark, and
        truncates the physical region.  Crash-safe: destinations only
        ever come from extents the *committed* table considers free, and
        the table recommits after every pass, so a crash mid-compaction
        reopens a consistent (merely less compact) array.

        No-op (all-zero result) on a plain ``codec="none"`` array.
        Returns ``{"moves": n, "end": bytes, "reclaimed": bytes}``.
        """
        self._require_open()
        self._require_writable()
        if self._codec_store is None:
            return {"moves": 0, "end": self.meta.data_nbytes,
                    "reclaimed": 0}
        cs = self._codec_store
        self.flush()            # quiesce + commit (promotes pending frees)
        before = cs.table.end
        moves = 0
        while True:
            budget = None if max_moves is None else max_moves - moves
            if budget is not None and budget <= 0:
                break
            plan = cs.table.plan_compaction(budget)
            if not plan:
                break
            for index, slot, new_off in plan:
                payload = cs.inner.read(slot.offset, slot.length)
                cs.inner.write(new_off, payload)
                cs.table.apply_move(index, new_off)
            cs.inner.flush()
            self._persist_meta()
            moves += len(plan)
        cs.table.trim_end()
        self._persist_meta()    # may place a tail meta blob (single file)
        end = cs.table.end
        if cs.inner.size > end:
            cs.inner.truncate(end)
        return {"moves": moves, "end": end,
                "reclaimed": max(0, before - end)}

    # ------------------------------------------------------------------
    # plan execution (per-chunk, pool-batched, or streaming)
    # ------------------------------------------------------------------
    def _execute_read(self, plan: IOPlan, out: np.ndarray) -> None:
        """Scatter the planned chunks into ``out`` (its ``box_slices``
        coordinate frame)."""
        cs = self.chunk_shape
        if not self._coalesce or plan.num_chunks <= 1:
            for v in plan.visits:
                buf = self._pool.get(v.address)
                try:
                    arr = buf.view(self.dtype).reshape(cs)
                    out[v.box_slices] = arr[v.chunk_slices]
                finally:
                    self._pool.put(v.address)
        elif plan.num_chunks > self._pool.max_pages:
            self._read_streaming(plan, out)
        else:
            addrs = plan.addresses
            bufs = self._pool.get_many(addrs)
            try:
                for v, buf in zip(plan.visits, bufs):
                    arr = buf.view(self.dtype).reshape(cs)
                    out[v.box_slices] = arr[v.chunk_slices]
            finally:
                self._pool.put_many(addrs)

    def _read_streaming(self, plan: IOPlan, out: np.ndarray) -> None:
        """Move whole runs with vectored reads, bypassing the pool.

        Dirty cached pages shadow the file, so their buffers are used in
        place of the freshly read bytes (coherence with unflushed
        writes); clean cached pages are byte-identical to the file.
        Pending background write-backs are drained first — a streamed
        read must not observe the store before an already-submitted
        write-back lands.

        With an executor the runs become a double-buffered pipeline: run
        ``i+1`` is read in the background while run ``i`` scatters into
        ``out``.  The serial path (no executor, a single run, or armed
        fault machinery) keeps the historical one-``readv`` shape.
        """
        cs = self.chunk_shape
        nb = self.meta.chunk_nbytes
        self._pool.drain_writebehind()
        extents = plan.byte_extents()
        ex = self._executor
        if ex is None or len(extents) <= 1 or faultsites.any_active():
            blob = memoryview(self._data.readv(extents))
            self._scatter_run(plan.visits, blob, out)
            return
        visits = plan.visits
        vpos = 0
        fut = ex.submit(self._data.readv, [extents[0]])
        for i, (_off, length) in enumerate(extents):
            blob = memoryview(ex.result(fut))
            if i + 1 < len(extents):
                fut = ex.submit(self._data.readv, [extents[i + 1]])
            count = length // nb
            self._scatter_run(visits[vpos:vpos + count], blob, out)
            vpos += count

    def _scatter_run(self, visits, blob: memoryview,
                     out: np.ndarray) -> None:
        """Scatter one streamed blob (``visits`` in blob order) into
        ``out``, shadowing dirty cached pages and verifying checksums."""
        cs = self.chunk_shape
        nb = self.meta.chunk_nbytes
        pos = 0
        for v in visits:
            cached = self._pool.peek_dirty(v.address)
            if cached is not None:
                arr = cached.view(self.dtype).reshape(cs)
            else:
                raw = blob[pos:pos + nb]
                if self._guard is not None:
                    # a CRC mismatch arbitrates among replica copies of
                    # the chunk (no-op alternates on unreplicated stores)
                    raw = self._guard.check_or_arbitrate(
                        v.address, raw, self._data, v.address * nb, nb)
                arr = np.frombuffer(raw, dtype=self.dtype).reshape(cs)
            out[v.box_slices] = arr[v.chunk_slices]
            pos += nb

    def _execute_write(self, plan: IOPlan, values: np.ndarray) -> None:
        """Gather ``values`` (``box_slices`` frame) into the planned
        chunks."""
        cs = self.chunk_shape
        if not self._coalesce or plan.num_chunks <= 1:
            for v in plan.visits:
                buf = self._pool.get(v.address)
                try:
                    arr = buf.view(self.dtype).reshape(cs)
                    arr[v.chunk_slices] = values[v.box_slices]
                finally:
                    self._pool.put(v.address, dirty=True)
        elif plan.num_chunks > self._pool.max_pages:
            self._write_streaming(plan, values)
        else:
            addrs = plan.addresses
            bufs = self._pool.get_many(addrs)
            try:
                for v, buf in zip(plan.visits, bufs):
                    arr = buf.view(self.dtype).reshape(cs)
                    arr[v.chunk_slices] = values[v.box_slices]
            finally:
                self._pool.put_many(addrs, dirty=True)

    def _write_streaming(self, plan: IOPlan, values: np.ndarray) -> None:
        """Stream fully covered chunks to the store in coalesced runs.

        Partially covered (edge) chunks still read-modify-write through
        the pool, in capacity-sized batches.  Cached copies of streamed
        chunks are refreshed in place so the pool cannot later resurface
        (or write back) stale bytes; pending background write-backs are
        drained first (an in-flight write-back must not land *after*
        this write) and pending read-aheads are invalidated (one could
        have captured pre-write bytes).

        With an executor the full-chunk runs pipeline: while run ``i``'s
        ``writev`` is in flight, run ``i+1``'s payload is gathered and
        its checksums recorded — at most one store write in flight, so
        write ordering is preserved.
        """
        nb = self.meta.chunk_nbytes
        full = [v for v in plan.visits if v.full]
        partial = [v for v in plan.visits if not v.full]
        self._pool.drain_writebehind()
        self._pool.discard_prefetch()
        if full:
            starts, counts = coalesce_addresses(
                np.asarray([v.address for v in full], dtype=np.int64))
            extents = [(int(s) * nb, int(c) * nb)
                       for s, c in zip(starts, counts)]
            ex = self._executor
            if ex is None or len(extents) <= 1 or faultsites.any_active():
                payload = bytearray()
                for v in full:
                    raw = np.ascontiguousarray(
                        values[v.box_slices]).tobytes()
                    self._pool.refresh(v.address, raw)
                    payload += raw
                self._data.writev(extents, payload)
                if self._guard is not None:
                    pos = 0
                    nbv = memoryview(payload)
                    for v in full:
                        self._guard.record(v.address, nbv[pos:pos + nb])
                        pos += nb
            else:
                vpos = 0
                pending = None
                for off, length in extents:
                    count = length // nb
                    run = full[vpos:vpos + count]
                    vpos += count
                    payload = bytearray()
                    for v in run:
                        raw = np.ascontiguousarray(
                            values[v.box_slices]).tobytes()
                        self._pool.refresh(v.address, raw)
                        payload += raw
                    if self._guard is not None:
                        pos = 0
                        nbv = memoryview(payload)
                        for v in run:
                            self._guard.record(v.address,
                                               nbv[pos:pos + nb])
                            pos += nb
                    if pending is not None:
                        ex.result(pending)
                    pending = ex.submit(self._data.writev,
                                        [(off, length)], bytes(payload))
                ex.result(pending)
        for i in range(0, len(partial), self._pool.max_pages):
            batch = partial[i:i + self._pool.max_pages]
            addrs = [v.address for v in batch]
            bufs = self._pool.get_many(addrs)
            try:
                for v, buf in zip(batch, bufs):
                    arr = buf.view(self.dtype).reshape(self.chunk_shape)
                    arr[v.chunk_slices] = values[v.box_slices]
            finally:
                self._pool.put_many(addrs, dirty=True)
