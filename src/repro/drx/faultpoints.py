"""Named crash points inside the storage stack's commit protocols.

A *crash point* is a named location in a commit sequence (meta-data
rewrite, header flip, pool flush) where a process death would leave the
on-disk state in a specific intermediate shape.  Production code calls
:func:`crash_point` at each such location; the call is a no-op unless a
fault plan (:class:`repro.drx.resilience.FaultPlan`) is *active*, in
which case the plan may raise :class:`~repro.core.errors.CrashError` to
simulate dying right there.  Crash-consistency tests sweep every site in
:data:`CRASH_SITES` and assert the array reopens to a valid old-or-new
state from each one.

The registry is deliberately tiny and dependency-free so every storage
module can import it without cycles.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["crash_point", "activate", "deactivate", "CRASH_SITES"]


#: Every named crash site, with the on-disk state a crash there leaves.
#: Tests assert this inventory is live (each site fires during a normal
#: commit cycle) and sweep it for crash consistency.
CRASH_SITES: dict[str, str] = {
    # two-file (.xmd) meta-data commit -------------------------------------
    "xmd.commit.begin":
        "before anything is written: old meta-data fully intact",
    "posix.replace.opened":
        "temp file created but empty: target file untouched",
    "posix.replace.written":
        "temp file holds the new bytes, not yet fsynced",
    "posix.replace.synced":
        "temp file durable, rename not yet issued: target still old",
    "posix.replace.renamed":
        "rename issued, directory not yet fsynced: target old or new",
    "xmd.commit.end":
        "new meta-data fully committed",
    # single-file (.drx) shadow-slot header commit -------------------------
    "sf.meta.before_blob":
        "nothing written: both header slots and blobs intact",
    "sf.meta.after_blob":
        "new meta blob written to the shadow region, header still points "
        "at the old blob",
    "sf.header.before_slot":
        "new blob durable, slot not yet flipped: readers see the old "
        "generation",
    "sf.header.after_slot":
        "new slot written (possibly not yet durable): readers see old or "
        "new generation, both valid",
    # buffer-pool flush ----------------------------------------------------
    "mpool.flush.begin":
        "no dirty page written back yet",
    "mpool.flush.after_writeback":
        "dirty chunks written to the store, store flush not yet issued",
}


class _Plan(Protocol):  # pragma: no cover - typing aid only
    def note_site(self, site: str) -> None: ...


#: Currently active fault plans (usually zero or one; nesting composes).
_ACTIVE: list[_Plan] = []


def crash_point(site: str) -> None:
    """Announce reaching crash site ``site``.

    No-op with no active plan; otherwise every active plan observes the
    site and may raise :class:`~repro.core.errors.CrashError`.
    """
    if not _ACTIVE:
        return
    for plan in list(_ACTIVE):
        plan.note_site(site)


def activate(plan: _Plan) -> None:
    """Register ``plan`` to observe crash points (idempotent)."""
    if plan not in _ACTIVE:
        _ACTIVE.append(plan)


def deactivate(plan: _Plan) -> None:
    """Stop ``plan`` observing crash points (idempotent)."""
    try:
        _ACTIVE.remove(plan)
    except ValueError:
        pass
