"""Named fault sites inside the storage stack (compatibility shim).

The registry and dispatcher moved to :mod:`repro.core.faultsites` so the
``pfs`` layer can announce server-kill sites without importing the
``drx`` package (which itself imports ``pfs`` — a cycle otherwise).
This module keeps the historical import path alive; see
:mod:`repro.core.faultsites` for the documentation.
"""

from __future__ import annotations

from ..core.faultsites import (
    ALL_SITES,
    CRASH_SITES,
    DAEMON_SITES,
    KILL_SITES,
    NET_SITES,
    activate,
    crash_point,
    deactivate,
)

__all__ = ["crash_point", "activate", "deactivate", "CRASH_SITES",
           "KILL_SITES", "DAEMON_SITES", "NET_SITES", "ALL_SITES"]
