"""I/O planning: coalescing sorted chunk addresses into contiguous runs.

The mapping function ``F*`` lays an extendible array out so that the
chunks of any rectilinear region sort into long stretches of consecutive
linear addresses — the paper's "sequential scan of the chunks on disk".
The per-chunk transfer loops in :class:`~repro.drx.drxfile.DRXFile` and
:class:`~repro.drx.mpool.Mpool` used to throw that contiguity away by
issuing one store call per chunk.  This module turns a box or hyperslab
request into an :class:`IOPlan`: the chunk visits in increasing linear
address order, grouped into **maximal contiguous runs**, each of which
can move with a single vectored store call (the serial analog of MPI-IO
data sieving / two-phase aggregation).

The planner is pure geometry + address arithmetic; the transfers live in
``DRXFile`` (which executes plans against its :class:`Mpool` and
:class:`~repro.drx.storage.ByteStore`) and in
:func:`repro.drxmp.subarray.indexed_filetype` (which folds runs into the
blocklengths of the MPI indexed filetype).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..core.chunking import iter_box_intersections
from ..core.errors import DRXIndexError
from ..core.extendible import ExtendibleChunkIndex
from ..core.hyperslab import Hyperslab
from ..core.mapping import f_star_many

__all__ = ["Visit", "Run", "IOPlan", "PlanCache", "coalesce_addresses",
           "plan_box", "plan_slab"]

#: A half-open byte extent ``(offset, length)``.
Extent = tuple[int, int]


def coalesce_addresses(addresses: np.ndarray | Sequence[int]
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Group strictly increasing chunk addresses into contiguous runs.

    Returns ``(starts, counts)``: run ``i`` covers addresses
    ``starts[i] .. starts[i] + counts[i] - 1``.  Raises
    :class:`DRXIndexError` when the input is not strictly increasing
    (planners always sort and deduplicate first).
    """
    a = np.ascontiguousarray(addresses, dtype=np.int64)
    if a.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    gaps = np.diff(a)
    if np.any(gaps < 1):
        raise DRXIndexError(
            "addresses must be strictly increasing to coalesce"
        )
    breaks = np.empty(a.size, dtype=bool)
    breaks[0] = True
    breaks[1:] = gaps > 1
    starts = a[breaks]
    first = np.flatnonzero(breaks)
    counts = np.diff(np.append(first, a.size))
    return starts, counts.astype(np.int64)


@dataclass(frozen=True, slots=True)
class Visit:
    """One chunk touched by a request, with its scatter/gather slices.

    ``chunk_slices`` select the transferred region inside the chunk
    (local coordinates, possibly strided for hyperslabs); ``box_slices``
    select the matching region of the request's in-memory array.
    ``full`` is True when the whole chunk payload moves with unit stride
    — such writes need no read-modify-write.
    """

    address: int
    chunk_slices: tuple[slice, ...]
    box_slices: tuple[slice, ...]
    full: bool


@dataclass(frozen=True, slots=True)
class Run:
    """A maximal stretch of consecutive chunk addresses.

    ``first`` indexes the run's first chunk in the plan's visit list, so
    ``plan.visits[first:first + count]`` are exactly this run's visits.
    """

    start: int
    count: int
    first: int

    def byte_extent(self, chunk_nbytes: int) -> Extent:
        return (self.start * chunk_nbytes, self.count * chunk_nbytes)


class IOPlan:
    """A request compiled to file order: sorted visits + contiguous runs."""

    __slots__ = ("visits", "runs", "chunk_nbytes")

    def __init__(self, visits: list[Visit], chunk_nbytes: int) -> None:
        self.visits = visits
        self.chunk_nbytes = chunk_nbytes
        addrs = np.fromiter((v.address for v in visits), dtype=np.int64,
                            count=len(visits))
        starts, counts = coalesce_addresses(addrs)
        first = 0
        runs: list[Run] = []
        for s, c in zip(starts, counts):
            runs.append(Run(int(s), int(c), first))
            first += int(c)
        self.runs = runs

    @property
    def num_chunks(self) -> int:
        return len(self.visits)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def addresses(self) -> list[int]:
        return [v.address for v in self.visits]

    def byte_extents(self) -> list[Extent]:
        """One byte extent per run — the vectored transfer list."""
        return [r.byte_extent(self.chunk_nbytes) for r in self.runs]

    def run_visits(self) -> Iterator[tuple[Run, list[Visit]]]:
        for r in self.runs:
            yield r, self.visits[r.first:r.first + r.count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IOPlan({self.num_chunks} chunks in {self.num_runs} runs, "
                f"chunk_nbytes={self.chunk_nbytes})")


class PlanCache:
    """A bounded, generation-keyed memo of compiled :class:`IOPlan`\\ s.

    Request geometry (box corners, hyperslab parameters) plus the axial
    index's **generation** form the key, so any :meth:`extend` — which
    bumps the generation — implicitly invalidates every cached plan; no
    explicit flush hook can be forgotten.  Plans are compiled in
    *logical* chunk-address space: the compressed slot table remaps
    logical addresses to physical extents at I/O time, so compaction and
    codec rewrites never stale a cached plan (pinned by regression
    test).  Cached plans are immutable after construction and may be
    executed concurrently by multiple reader threads.

    ``stats`` (optional) is a :class:`~repro.drx.storage.StoreStats`
    whose ``plan_hits``/``plan_misses`` counters make the hit rate
    observable — the tuning advisor treats a low hit rate as a sign the
    workload is not iterative and read-ahead should shrink.
    """

    def __init__(self, max_entries: int = 256, stats=None) -> None:
        self.max_entries = max(1, int(max_entries))
        self.stats = stats
        self._plans: "OrderedDict[tuple, IOPlan]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def lookup(self, key: tuple) -> IOPlan | None:
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
            if self.stats is not None:
                self.stats.note_plan(plan is not None)
            return plan

    def store(self, key: tuple, plan: IOPlan) -> None:
        with self._lock:
            # a generation bump obsoletes every older entry wholesale;
            # dropping them keeps the LRU from squatting on dead keys
            gen = key[1]
            if self._plans:
                first = next(iter(self._plans))
                if first[1] != gen:
                    self._plans.clear()
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)

    # -- convenience wrappers over the pure planners -------------------
    def box(self, eci: ExtendibleChunkIndex, lo, hi,
            chunk_shape, chunk_nbytes: int) -> IOPlan:
        key = ("box", eci.generation, tuple(lo), tuple(hi))
        plan = self.lookup(key)
        if plan is None:
            plan = plan_box(eci, lo, hi, chunk_shape, chunk_nbytes)
            self.store(key, plan)
        return plan

    def slab(self, eci: ExtendibleChunkIndex, slab: Hyperslab,
             chunk_shape, chunk_nbytes: int) -> IOPlan:
        key = ("slab", eci.generation, slab.start, slab.stride,
               slab.count)
        plan = self.lookup(key)
        if plan is None:
            plan = plan_slab(eci, slab, chunk_shape, chunk_nbytes)
            self.store(key, plan)
        return plan


def plan_box(eci: ExtendibleChunkIndex, lo: Sequence[int],
             hi: Sequence[int], chunk_shape: Sequence[int],
             chunk_nbytes: int) -> IOPlan:
    """Compile a dense box request ``[lo, hi)`` into an :class:`IOPlan`."""
    inters = list(iter_box_intersections(lo, hi, chunk_shape))
    idx = np.asarray([it.chunk_index for it in inters], dtype=np.int64)
    addrs = f_star_many(eci, idx)
    order = np.argsort(addrs, kind="stable")
    visits = [
        Visit(int(addrs[i]), inters[i].chunk_slices,
              inters[i].box_slices, inters[i].full)
        for i in order
    ]
    return IOPlan(visits, chunk_nbytes)


def plan_slab(eci: ExtendibleChunkIndex, slab: Hyperslab,
              chunk_shape: Sequence[int], chunk_nbytes: int) -> IOPlan:
    """Compile a strided hyperslab into an :class:`IOPlan`.

    Chunks of the slab's bounding box that hold no lattice point are
    dropped; the surviving visits carry strided ``chunk_slices`` picking
    the lattice and dense ``box_slices`` into the result array.
    """
    lo, hi = slab.bounding_box()
    inters = list(iter_box_intersections(lo, hi, chunk_shape))
    idx = np.asarray([it.chunk_index for it in inters], dtype=np.int64)
    addrs = f_star_many(eci, idx)
    order = np.argsort(addrs, kind="stable")
    visits: list[Visit] = []
    for i in order:
        inter = inters[i]
        abs_lo = tuple(l + bs.start for l, bs in zip(lo, inter.box_slices))
        abs_hi = tuple(l + bs.stop for l, bs in zip(lo, inter.box_slices))
        sel = slab.box_selector(abs_lo, abs_hi)
        if sel is None:
            continue
        rel_sl, out_sl = sel
        chunk_sl = tuple(
            slice(cs.start + rs.start, cs.start + rs.stop, rs.step)
            for cs, rs in zip(inter.chunk_slices, rel_sl)
        )
        full = inter.full and all(
            rs.step == 1 and rs.start == 0 and rs.stop == c
            for rs, c in zip(rel_sl, chunk_shape)
        )
        visits.append(Visit(int(addrs[i]), chunk_sl, out_sl, full))
    return IOPlan(visits, chunk_nbytes)
