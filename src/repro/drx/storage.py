"""Byte-store backends for DRX array files.

DRX (the serial library) stores its pair of files "in any POSIX-compliant
Unix file system" — :class:`PosixByteStore` does exactly that with real
files.  :class:`MemoryByteStore` backs unit tests, and
:class:`PFSByteStore` adapts a simulated-PFS file so a serial DRX file
and a parallel DRX-MP file are byte-compatible (the same ``.xta`` layout
read through either library — tested in the integration suite).

All stores expose the same tiny interface: ``read``, ``write``, ``size``,
``truncate``, ``flush``, ``close``; reads past the end return zeros
(sparse semantics, which lazy segment materialization relies on).  On top
of the scalar calls sit the vectored forms ``readv``/``writev`` taking a
list of contiguous byte extents — the transfer primitive of the run
coalescing I/O planner (:mod:`repro.drx.ioplan`).  The base class runs
them as one scalar call per extent; :class:`PosixByteStore` issues one
positioned read/write per run, and :class:`PFSByteStore` forwards the
whole extent list to the striped file's native vectored path so a single
call fans out over the I/O servers.

Every store carries a :class:`StoreStats` counter block: ``syscalls`` is
the number of physical transfer operations issued (one per scalar call,
one per extent of a vectored call), ``coalesced_runs`` counts the extents
moved through the vectored entry points, and ``bytes_per_call`` is the
resulting mean transfer size — the quantity run coalescing exists to
maximize.  The fault-model counters ``short_reads``, ``retries`` and
``giveups`` are filled in by the stores themselves (partial ``pread``
recovery) and by the :class:`~repro.drx.resilience.RetryingByteStore`
decorator.

Stores also expose ``replace(data)`` — replace the *entire* contents in
one crash-consistent step.  :class:`PosixByteStore` implements it as the
classic temp-file + fsync + atomic-rename sequence (with named crash
points for the crash-consistency tests); the in-memory default is a
plain rewrite.  The meta-data commit protocols build on it.
"""

from __future__ import annotations

import os
import pathlib
import threading
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..core.errors import DRXFileError, PFSError
from ..pfs.pfile import PFSFile
from .faultpoints import crash_point

__all__ = ["ByteStore", "StoreStats", "PosixByteStore", "MemoryByteStore",
           "PFSByteStore"]

#: A half-open byte extent ``(offset, length)``.
Extent = tuple[int, int]


@dataclass
class StoreStats:
    """Cumulative transfer counters for one byte store.

    The counter block is shared between the foreground thread and the
    executor's background read-ahead / write-behind tasks, so the
    ``note_*`` helpers serialize on a private lock.  ``snapshot()`` /
    ``delta()`` return plain value copies (the lock is never copied).
    """

    reads: int = 0            #: physical read transfers issued
    writes: int = 0           #: physical write transfers issued
    readv_calls: int = 0      #: vectored read invocations
    writev_calls: int = 0     #: vectored write invocations
    coalesced_runs: int = 0   #: contiguous runs moved through readv/writev
    bytes_read: int = 0
    bytes_written: int = 0
    short_reads: int = 0      #: partial transfers recovered by re-reading
    retries: int = 0          #: operations re-issued after transient faults
    giveups: int = 0          #: operations abandoned (permanent / exhausted)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    @property
    def syscalls(self) -> int:
        """Physical transfer operations issued to the backing medium."""
        return self.reads + self.writes

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def bytes_per_call(self) -> float:
        """Mean bytes moved per physical transfer (0 when idle)."""
        return self.bytes_moved / self.syscalls if self.syscalls else 0.0

    def note_read(self, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes

    def note_write(self, nbytes: int) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += nbytes

    def note_readv(self, nruns: int) -> None:
        with self._lock:
            self.readv_calls += 1
            self.coalesced_runs += nruns

    def note_writev(self, nruns: int) -> None:
        with self._lock:
            self.writev_calls += 1
            self.coalesced_runs += nruns

    def snapshot(self) -> "StoreStats":
        return replace(self)

    def delta(self, earlier: "StoreStats") -> "StoreStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return StoreStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            readv_calls=self.readv_calls - earlier.readv_calls,
            writev_calls=self.writev_calls - earlier.writev_calls,
            coalesced_runs=self.coalesced_runs - earlier.coalesced_runs,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            short_reads=self.short_reads - earlier.short_reads,
            retries=self.retries - earlier.retries,
            giveups=self.giveups - earlier.giveups,
        )

    def reset(self) -> None:
        self.reads = self.writes = 0
        self.readv_calls = self.writev_calls = 0
        self.coalesced_runs = 0
        self.bytes_read = self.bytes_written = 0
        self.short_reads = self.retries = self.giveups = 0


class ByteStore:
    """Abstract byte store interface (see module docstring)."""

    #: True on stores whose behaviour depends on the exact *order* of
    #: operations (fault-injecting decorators count ops to decide when a
    #: scripted fault fires).  The concurrency layers check this flag and
    #: keep every access to such a store strictly serial.
    deterministic_only = False

    def __init__(self) -> None:
        self.stats = StoreStats()

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data) -> None:
        raise NotImplementedError

    def readv(self, extents: Sequence[Extent]) -> bytes:
        """Read the given extents, concatenated in request order.

        Fallback: one scalar :meth:`read` per extent (which does its own
        accounting).  Backends with a cheaper vectored path override this.
        """
        self.stats.note_readv(len(extents))
        return b"".join(self.read(off, length) for off, length in extents)

    def writev(self, extents: Sequence[Extent], data) -> None:
        """Write ``data`` (one buffer covering every extent, in order)
        into the given extents.

        Fallback: one scalar :meth:`write` per extent with a zero-copy
        ``memoryview`` slice of ``data``.
        """
        self.stats.note_writev(len(extents))
        mv = memoryview(data)
        total = sum(length for _off, length in extents)
        if total != len(mv):
            raise DRXFileError(
                f"writev: extents cover {total} bytes, data has {len(mv)}"
            )
        pos = 0
        for off, length in extents:
            self.write(off, mv[pos:pos + length])
            pos += length

    def replace(self, data) -> None:
        """Replace the store's entire contents with ``data``.

        Commit protocols use this for whole-object rewrites that must
        never be observed half-done.  The generic fallback is a plain
        truncate + write + flush (adequate for in-memory stores, where
        crash atomicity is moot); :class:`PosixByteStore` overrides it
        with the temp-file + fsync + atomic-rename sequence.
        """
        self.truncate(len(data))
        self.write(0, data)
        self.flush()

    def read_alternates(self, offset: int, length: int) -> list[bytes]:
        """Independent alternate versions of a byte range, one per
        physical replica that can serve it.

        Single-copy stores have none (the default).  Replicated stores
        (:class:`PFSByteStore` over a replication > 1 layout) return one
        buffer per reachable replica copy; the checksum guard uses them
        to *arbitrate* when the regular read fails its CRC — a torn
        replica fan-out leaves copies diverging, and the copy matching
        the recorded checksum is the committed one.
        """
        return []

    def repair(self, offset: int, data) -> None:
        """Write back arbitrated bytes *out of band* — the heal side of
        :meth:`read_alternates`.

        Arbitration happens on a logical read, so healing the losing
        replica must not skew write counters or trip injected write
        faults; replicated stores override this with a path that
        bypasses both (:class:`PFSByteStore` patches the server objects
        directly), and the resilience decorators forward it untouched.
        The fallback is a plain :meth:`write` — only reachable by
        direct callers, since single-copy stores never arbitrate.
        """
        self.write(offset, data)

    @property
    def size(self) -> int:
        raise NotImplementedError

    def truncate(self, size: int) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class PosixByteStore(ByteStore):
    """A real file accessed with ``os.pread``/``os.pwrite``."""

    def __init__(self, path: str | pathlib.Path, mode: str = "r+") -> None:
        super().__init__()
        self.path = pathlib.Path(path)
        if mode == "r":
            flags = os.O_RDONLY
        elif mode == "r+":
            flags = os.O_RDWR
        elif mode == "x+":
            flags = os.O_RDWR | os.O_CREAT | os.O_EXCL
        elif mode == "w+":
            flags = os.O_RDWR | os.O_CREAT | os.O_TRUNC
        else:
            raise DRXFileError(f"unsupported mode {mode!r}")
        self._writable = mode != "r"
        try:
            self._fd = os.open(self.path, flags, 0o644)
        except OSError as exc:
            raise DRXFileError(f"cannot open {self.path}: {exc}") from exc
        self._closed = False

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes, looping on partial ``pread``.

        POSIX allows a ``pread`` to transfer fewer bytes than requested
        mid-file (signals, NFS, pipes under the hood); only a genuine
        end-of-file return stops the loop, so zeros are filled in for
        bytes actually past EOF (sparse semantics), never for bytes the
        kernel simply hadn't delivered yet.  Each recovered partial
        transfer counts in ``stats.short_reads``.
        """
        self.stats.note_read(length)
        data = os.pread(self._fd, length, offset)
        if len(data) == length:                     # common case, no copy
            return data
        parts = [data] if data else []
        got = len(data)
        while got < length:
            piece = os.pread(self._fd, length - got, offset + got)
            if not piece:
                break                               # true EOF: zero-fill
            self.stats.short_reads += 1             # previous pread was short
            parts.append(piece)
            got += len(piece)
        if got < length:
            parts.append(b"\x00" * (length - got))
        return b"".join(parts)

    def write(self, offset: int, data) -> None:
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        self.stats.note_write(len(data))
        os.pwrite(self._fd, data, offset)

    # the inherited readv/writev already issue exactly one positioned
    # read/write per extent — one seek+transfer per coalesced run — so no
    # override is needed; there is no POSIX scatter-offset vector call.

    def replace(self, data) -> None:
        """Atomically replace the file's contents (temp + fsync + rename).

        A crash at any instant leaves either the complete old file or the
        complete new one — the rename is the commit point.  The open file
        descriptor is re-pointed at the new inode afterwards, and the
        directory is fsynced so the rename itself is durable.
        """
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        self.stats.note_write(len(data))
        tmp = self.path.with_name(self.path.name + ".commit")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            crash_point("posix.replace.opened")
            view = memoryview(data) if not isinstance(data, memoryview) \
                else data
            pos = 0
            while pos < len(view):
                pos += os.write(fd, view[pos:])
            crash_point("posix.replace.written")
            os.fsync(fd)
        finally:
            os.close(fd)
        crash_point("posix.replace.synced")
        os.replace(tmp, self.path)
        crash_point("posix.replace.renamed")
        os.close(self._fd)
        self._fd = os.open(self.path, os.O_RDWR)
        dirfd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)

    @property
    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def truncate(self, size: int) -> None:
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        os.ftruncate(self._fd, size)

    def flush(self) -> None:
        if not self._closed:
            os.fsync(self._fd)

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True


class MemoryByteStore(ByteStore):
    """An in-memory byte store (unit tests, scratch arrays).

    The body is guarded by a lock: background read-ahead / write-behind
    tasks touch the same ``bytearray`` as the foreground thread, and a
    concurrent ``extend`` during a slice read is not atomic in general.
    """

    def __init__(self) -> None:
        super().__init__()
        self._data = bytearray()
        self._mem_lock = threading.Lock()

    def read(self, offset: int, length: int) -> bytes:
        self.stats.note_read(length)
        with self._mem_lock:
            end = offset + length
            chunk = bytes(self._data[offset:min(end, len(self._data))])
        return chunk + b"\x00" * (length - len(chunk))

    def write(self, offset: int, data) -> None:
        self.stats.note_write(len(data))
        with self._mem_lock:
            end = offset + len(data)
            if end > len(self._data):
                self._data.extend(b"\x00" * (end - len(self._data)))
            self._data[offset:end] = data

    @property
    def size(self) -> int:
        with self._mem_lock:
            return len(self._data)

    def truncate(self, size: int) -> None:
        with self._mem_lock:
            if size < len(self._data):
                del self._data[size:]
            else:
                self._data.extend(b"\x00" * (size - len(self._data)))


class PFSByteStore(ByteStore):
    """Adapter exposing a simulated-PFS file as a byte store.

    The vectored forms forward the whole extent list to
    :meth:`PFSFile.readv`/:meth:`PFSFile.writev`, so one store call
    becomes one striped request batch per I/O server — the path where run
    coalescing pays twice (fewer requests *and* full-stripe transfers).
    """

    def __init__(self, pfile: PFSFile) -> None:
        super().__init__()
        self._pfile = pfile

    def read(self, offset: int, length: int) -> bytes:
        self.stats.note_read(length)
        return self._pfile.read(offset, length)

    def write(self, offset: int, data) -> None:
        self.stats.note_write(len(data))
        self._pfile.write(offset, data)

    def readv(self, extents: Sequence[Extent]) -> bytes:
        self.stats.note_readv(len(extents))
        for _off, length in extents:
            self.stats.note_read(length)
        data, _t = self._pfile.readv(list(extents))
        return data

    def writev(self, extents: Sequence[Extent], data) -> None:
        self.stats.note_writev(len(extents))
        for _off, length in extents:
            self.stats.note_write(length)
        self._pfile.writev(list(extents), data)

    def read_alternates(self, offset: int, length: int) -> list[bytes]:
        """One buffer per reachable replica copy of the range (empty on
        an unreplicated layout).  Unreachable copies are skipped — the
        arbitration caller only needs the versions that still exist."""
        if self._pfile.replication < 2:
            return []
        out: list[bytes] = []
        for copy in range(self._pfile.replication):
            try:
                data, _t = self._pfile.readv_copy([(offset, length)], copy)
            except PFSError:
                continue
            out.append(data)
        return out

    def repair(self, offset: int, data) -> None:
        """Heal a byte range on every reachable replica out of band —
        no store stats, no server stats, no fault plan (see
        :meth:`PFSFile.repair <repro.pfs.pfile.PFSFile.repair>`)."""
        self._pfile.repair(offset, bytes(data))

    @property
    def size(self) -> int:
        return self._pfile.size

    def truncate(self, size: int) -> None:
        self._pfile.set_size(size)
