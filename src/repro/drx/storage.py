"""Byte-store backends for DRX array files.

DRX (the serial library) stores its pair of files "in any POSIX-compliant
Unix file system" — :class:`PosixByteStore` does exactly that with real
files.  :class:`MemoryByteStore` backs unit tests, and
:class:`PFSByteStore` adapts a simulated-PFS file so a serial DRX file
and a parallel DRX-MP file are byte-compatible (the same ``.xta`` layout
read through either library — tested in the integration suite).

All stores expose the same tiny interface: ``read``, ``write``, ``size``,
``truncate``, ``flush``, ``close``; reads past the end return zeros
(sparse semantics, which lazy segment materialization relies on).  On top
of the scalar calls sit the vectored forms ``readv``/``writev`` taking a
list of contiguous byte extents — the transfer primitive of the run
coalescing I/O planner (:mod:`repro.drx.ioplan`).  The base class runs
them as one scalar call per extent; :class:`PosixByteStore` issues one
positioned read/write per run, and :class:`PFSByteStore` forwards the
whole extent list to the striped file's native vectored path so a single
call fans out over the I/O servers.

Every store carries a :class:`StoreStats` counter block: ``syscalls`` is
the number of physical transfer operations issued (one per scalar call,
one per extent of a vectored call), ``coalesced_runs`` counts the extents
moved through the vectored entry points, and ``bytes_per_call`` is the
resulting mean transfer size — the quantity run coalescing exists to
maximize.  The fault-model counters ``short_reads``, ``retries`` and
``giveups`` are filled in by the stores themselves (partial ``pread``
recovery) and by the :class:`~repro.drx.resilience.RetryingByteStore`
decorator.

Stores also expose ``replace(data)`` — replace the *entire* contents in
one crash-consistent step.  :class:`PosixByteStore` implements it as the
classic temp-file + fsync + atomic-rename sequence (with named crash
points for the crash-consistency tests); the in-memory default is a
plain rewrite.  The meta-data commit protocols build on it.
"""

from __future__ import annotations

import os
import pathlib
import threading
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..core import faultsites
from ..core.errors import DRXFileError, PFSError
from ..pfs.pfile import PFSFile
from .chunkalloc import SlotTable
from .codec import Codec, CodecStats, timed_frame_decode, timed_frame_encode
from .faultpoints import crash_point

__all__ = ["ByteStore", "StoreStats", "PosixByteStore", "MemoryByteStore",
           "PFSByteStore", "CompressedByteStore"]

#: A half-open byte extent ``(offset, length)``.
Extent = tuple[int, int]


@dataclass
class StoreStats:
    """Cumulative transfer counters for one byte store.

    The counter block is shared between the foreground thread and the
    executor's background read-ahead / write-behind tasks, so the
    ``note_*`` helpers serialize on a private lock.  ``snapshot()`` /
    ``delta()`` return plain value copies (the lock is never copied).
    """

    reads: int = 0            #: physical read transfers issued
    writes: int = 0           #: physical write transfers issued
    readv_calls: int = 0      #: vectored read invocations
    writev_calls: int = 0     #: vectored write invocations
    coalesced_runs: int = 0   #: contiguous runs moved through readv/writev
    bytes_read: int = 0
    bytes_written: int = 0
    short_reads: int = 0      #: partial transfers recovered by re-reading
    retries: int = 0          #: operations re-issued after transient faults
    giveups: int = 0          #: operations abandoned (permanent / exhausted)
    plan_hits: int = 0        #: IOPlan compilations served from the cache
    plan_misses: int = 0      #: IOPlan compilations built fresh
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    @property
    def syscalls(self) -> int:
        """Physical transfer operations issued to the backing medium."""
        return self.reads + self.writes

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def bytes_per_call(self) -> float:
        """Mean bytes moved per physical transfer (0 when idle)."""
        return self.bytes_moved / self.syscalls if self.syscalls else 0.0

    def note_read(self, nbytes: int) -> None:
        with self._lock:
            self.reads += 1
            self.bytes_read += nbytes

    def note_write(self, nbytes: int) -> None:
        with self._lock:
            self.writes += 1
            self.bytes_written += nbytes

    def note_readv(self, nruns: int) -> None:
        with self._lock:
            self.readv_calls += 1
            self.coalesced_runs += nruns

    def note_writev(self, nruns: int) -> None:
        with self._lock:
            self.writev_calls += 1
            self.coalesced_runs += nruns

    def note_plan(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.plan_hits += 1
            else:
                self.plan_misses += 1

    def snapshot(self) -> "StoreStats":
        return replace(self)

    def delta(self, earlier: "StoreStats") -> "StoreStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return StoreStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            readv_calls=self.readv_calls - earlier.readv_calls,
            writev_calls=self.writev_calls - earlier.writev_calls,
            coalesced_runs=self.coalesced_runs - earlier.coalesced_runs,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            short_reads=self.short_reads - earlier.short_reads,
            retries=self.retries - earlier.retries,
            giveups=self.giveups - earlier.giveups,
            plan_hits=self.plan_hits - earlier.plan_hits,
            plan_misses=self.plan_misses - earlier.plan_misses,
        )

    def reset(self) -> None:
        self.reads = self.writes = 0
        self.readv_calls = self.writev_calls = 0
        self.coalesced_runs = 0
        self.bytes_read = self.bytes_written = 0
        self.short_reads = self.retries = self.giveups = 0
        self.plan_hits = self.plan_misses = 0


class ByteStore:
    """Abstract byte store interface (see module docstring)."""

    #: True on stores whose behaviour depends on the exact *order* of
    #: operations (fault-injecting decorators count ops to decide when a
    #: scripted fault fires).  The concurrency layers check this flag and
    #: keep every access to such a store strictly serial.
    deterministic_only = False

    def __init__(self) -> None:
        self.stats = StoreStats()

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data) -> None:
        raise NotImplementedError

    def readv(self, extents: Sequence[Extent]) -> bytes:
        """Read the given extents, concatenated in request order.

        Fallback: one scalar :meth:`read` per extent (which does its own
        accounting).  Backends with a cheaper vectored path override this.
        """
        self.stats.note_readv(len(extents))
        return b"".join(self.read(off, length) for off, length in extents)

    def writev(self, extents: Sequence[Extent], data) -> None:
        """Write ``data`` (one buffer covering every extent, in order)
        into the given extents.

        Fallback: one scalar :meth:`write` per extent with a zero-copy
        ``memoryview`` slice of ``data``.
        """
        self.stats.note_writev(len(extents))
        mv = memoryview(data)
        total = sum(length for _off, length in extents)
        if total != len(mv):
            raise DRXFileError(
                f"writev: extents cover {total} bytes, data has {len(mv)}"
            )
        pos = 0
        for off, length in extents:
            self.write(off, mv[pos:pos + length])
            pos += length

    def replace(self, data) -> None:
        """Replace the store's entire contents with ``data``.

        Commit protocols use this for whole-object rewrites that must
        never be observed half-done.  The generic fallback is a plain
        truncate + write + flush (adequate for in-memory stores, where
        crash atomicity is moot); :class:`PosixByteStore` overrides it
        with the temp-file + fsync + atomic-rename sequence.
        """
        self.truncate(len(data))
        self.write(0, data)
        self.flush()

    def read_alternates(self, offset: int, length: int) -> list[bytes]:
        """Independent alternate versions of a byte range, one per
        physical replica that can serve it.

        Single-copy stores have none (the default).  Replicated stores
        (:class:`PFSByteStore` over a replication > 1 layout) return one
        buffer per reachable replica copy; the checksum guard uses them
        to *arbitrate* when the regular read fails its CRC — a torn
        replica fan-out leaves copies diverging, and the copy matching
        the recorded checksum is the committed one.
        """
        return []

    def repair(self, offset: int, data) -> None:
        """Write back arbitrated bytes *out of band* — the heal side of
        :meth:`read_alternates`.

        Arbitration happens on a logical read, so healing the losing
        replica must not skew write counters or trip injected write
        faults; replicated stores override this with a path that
        bypasses both (:class:`PFSByteStore` patches the server objects
        directly), and the resilience decorators forward it untouched.
        The fallback is a plain :meth:`write` — only reachable by
        direct callers, since single-copy stores never arbitrate.
        """
        self.write(offset, data)

    @property
    def size(self) -> int:
        raise NotImplementedError

    def truncate(self, size: int) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class PosixByteStore(ByteStore):
    """A real file accessed with ``os.pread``/``os.pwrite``."""

    def __init__(self, path: str | pathlib.Path, mode: str = "r+") -> None:
        super().__init__()
        self.path = pathlib.Path(path)
        if mode == "r":
            flags = os.O_RDONLY
        elif mode == "r+":
            flags = os.O_RDWR
        elif mode == "x+":
            flags = os.O_RDWR | os.O_CREAT | os.O_EXCL
        elif mode == "w+":
            flags = os.O_RDWR | os.O_CREAT | os.O_TRUNC
        else:
            raise DRXFileError(f"unsupported mode {mode!r}")
        self._writable = mode != "r"
        try:
            self._fd = os.open(self.path, flags, 0o644)
        except OSError as exc:
            raise DRXFileError(f"cannot open {self.path}: {exc}") from exc
        self._closed = False

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes, looping on partial ``pread``.

        POSIX allows a ``pread`` to transfer fewer bytes than requested
        mid-file (signals, NFS, pipes under the hood); only a genuine
        end-of-file return stops the loop, so zeros are filled in for
        bytes actually past EOF (sparse semantics), never for bytes the
        kernel simply hadn't delivered yet.  Each recovered partial
        transfer counts in ``stats.short_reads``.
        """
        self.stats.note_read(length)
        data = os.pread(self._fd, length, offset)
        if len(data) == length:                     # common case, no copy
            return data
        parts = [data] if data else []
        got = len(data)
        while got < length:
            piece = os.pread(self._fd, length - got, offset + got)
            if not piece:
                break                               # true EOF: zero-fill
            self.stats.short_reads += 1             # previous pread was short
            parts.append(piece)
            got += len(piece)
        if got < length:
            parts.append(b"\x00" * (length - got))
        return b"".join(parts)

    def write(self, offset: int, data) -> None:
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        self.stats.note_write(len(data))
        os.pwrite(self._fd, data, offset)

    # the inherited readv/writev already issue exactly one positioned
    # read/write per extent — one seek+transfer per coalesced run — so no
    # override is needed; there is no POSIX scatter-offset vector call.

    def replace(self, data) -> None:
        """Atomically replace the file's contents (temp + fsync + rename).

        A crash at any instant leaves either the complete old file or the
        complete new one — the rename is the commit point.  The open file
        descriptor is re-pointed at the new inode afterwards, and the
        directory is fsynced so the rename itself is durable.
        """
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        self.stats.note_write(len(data))
        tmp = self.path.with_name(self.path.name + ".commit")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            crash_point("posix.replace.opened")
            view = memoryview(data) if not isinstance(data, memoryview) \
                else data
            pos = 0
            while pos < len(view):
                pos += os.write(fd, view[pos:])
            crash_point("posix.replace.written")
            os.fsync(fd)
        finally:
            os.close(fd)
        crash_point("posix.replace.synced")
        os.replace(tmp, self.path)
        crash_point("posix.replace.renamed")
        os.close(self._fd)
        self._fd = os.open(self.path, os.O_RDWR)
        dirfd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)

    @property
    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def truncate(self, size: int) -> None:
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        os.ftruncate(self._fd, size)

    def flush(self) -> None:
        if not self._closed:
            os.fsync(self._fd)

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True


class MemoryByteStore(ByteStore):
    """An in-memory byte store (unit tests, scratch arrays).

    The body is guarded by a lock: background read-ahead / write-behind
    tasks touch the same ``bytearray`` as the foreground thread, and a
    concurrent ``extend`` during a slice read is not atomic in general.
    """

    def __init__(self) -> None:
        super().__init__()
        self._data = bytearray()
        self._mem_lock = threading.Lock()

    def read(self, offset: int, length: int) -> bytes:
        self.stats.note_read(length)
        with self._mem_lock:
            end = offset + length
            chunk = bytes(self._data[offset:min(end, len(self._data))])
        return chunk + b"\x00" * (length - len(chunk))

    def write(self, offset: int, data) -> None:
        self.stats.note_write(len(data))
        with self._mem_lock:
            end = offset + len(data)
            if end > len(self._data):
                self._data.extend(b"\x00" * (end - len(self._data)))
            self._data[offset:end] = data

    @property
    def size(self) -> int:
        with self._mem_lock:
            return len(self._data)

    def truncate(self, size: int) -> None:
        with self._mem_lock:
            if size < len(self._data):
                del self._data[size:]
            else:
                self._data.extend(b"\x00" * (size - len(self._data)))


class PFSByteStore(ByteStore):
    """Adapter exposing a simulated-PFS file as a byte store.

    The vectored forms forward the whole extent list to
    :meth:`PFSFile.readv`/:meth:`PFSFile.writev`, so one store call
    becomes one striped request batch per I/O server — the path where run
    coalescing pays twice (fewer requests *and* full-stripe transfers).
    """

    def __init__(self, pfile: PFSFile) -> None:
        super().__init__()
        self._pfile = pfile

    def read(self, offset: int, length: int) -> bytes:
        self.stats.note_read(length)
        return self._pfile.read(offset, length)

    def write(self, offset: int, data) -> None:
        self.stats.note_write(len(data))
        self._pfile.write(offset, data)

    def readv(self, extents: Sequence[Extent]) -> bytes:
        self.stats.note_readv(len(extents))
        for _off, length in extents:
            self.stats.note_read(length)
        data, _t = self._pfile.readv(list(extents))
        return data

    def writev(self, extents: Sequence[Extent], data) -> None:
        self.stats.note_writev(len(extents))
        for _off, length in extents:
            self.stats.note_write(length)
        self._pfile.writev(list(extents), data)

    def read_alternates(self, offset: int, length: int) -> list[bytes]:
        """One buffer per reachable replica copy of the range (empty on
        an unreplicated layout).  Unreachable copies are skipped — the
        arbitration caller only needs the versions that still exist."""
        if self._pfile.replication < 2:
            return []
        out: list[bytes] = []
        for copy in range(self._pfile.replication):
            try:
                data, _t = self._pfile.readv_copy([(offset, length)], copy)
            except PFSError:
                continue
            out.append(data)
        return out

    def repair(self, offset: int, data) -> None:
        """Heal a byte range on every reachable replica out of band —
        no store stats, no server stats, no fault plan (see
        :meth:`PFSFile.repair <repro.pfs.pfile.PFSFile.repair>`)."""
        self._pfile.repair(offset, bytes(data))

    @property
    def size(self) -> int:
        return self._pfile.size

    def truncate(self, size: int) -> None:
        self._pfile.set_size(size)


class CompressedByteStore(ByteStore):
    """Transparent per-chunk compression over an inner byte store.

    Exposes the array's *logical* uncompressed chunk address space —
    chunk ``q`` still appears to live at ``q * chunk_nbytes``, so the
    Mpool, the streaming pipelines and the container conversions work
    unchanged (and the pool caches *decompressed* pages; its eviction
    write-backs recompress right here).  Underneath, each chunk's framed
    compressed payload (:mod:`repro.drx.codec`) is placed by a
    :class:`~repro.drx.chunkalloc.SlotTable` and moved through the inner
    store at its physical extent.  Every access must be chunk-aligned —
    which every caller in the stack already is, because the chunk is the
    transfer unit.

    Integrity: the optional ``guard`` (a
    :class:`~repro.drx.resilience.ChecksumGuard`, duck-typed to avoid an
    import cycle) records and verifies CRC32 over the *compressed*
    payload, and a mismatch arbitrates among the inner store's replica
    copies of the physical slot — so replication, healing and the chaos
    suites operate on compressed arrays exactly as on plain ones.

    CPU offload: with a ``codec``-tier executor attached, multi-chunk
    batches split their encode/decode work across its threads (pure-CPU
    leaf tasks — ``zlib`` releases the GIL — so codec time overlaps the
    inner store's server I/O).  Falls back to serial for small batches,
    order-sensitive inner stores, or while fault machinery is armed.

    ``stats`` is shared with the inner store: the transfer counters
    report the *compressed* bytes physically moved, which is the
    quantity compression exists to shrink.  The codec-side accounting
    (raw vs stored bytes, ratio, encode/decode wall-time) lives in
    ``codec_stats``.
    """

    def __init__(self, inner: ByteStore, codec: Codec, table: SlotTable,
                 chunk_nbytes: int, logical_nbytes: int = 0,
                 guard=None, executor=None) -> None:
        super().__init__()
        if chunk_nbytes < 1:
            raise DRXFileError(f"chunk size must be >= 1, got {chunk_nbytes}")
        self._inner = inner
        self._codec = codec
        self._table = table
        self._nb = int(chunk_nbytes)
        self._logical = int(logical_nbytes)
        self._guard = guard
        self._executor = executor
        self.codec_stats = CodecStats()
        # one accounting surface per physical file (compressed bytes)
        self.stats = inner.stats
        # table mutations race between the foreground thread and the
        # pool's write-behind tasks; inner I/O runs outside the lock
        # (slot extents are disjoint per chunk, and the pool already
        # orders same-chunk operations)
        self._ch_lock = threading.RLock()
        self.deterministic_only = getattr(inner, "deterministic_only",
                                          False)

    # -- wiring surface for the file layer ---------------------------------
    @property
    def inner(self) -> ByteStore:
        return self._inner

    @property
    def table(self) -> SlotTable:
        return self._table

    @property
    def codec(self) -> Codec:
        return self._codec

    @property
    def guard(self):
        return self._guard

    def data_extent_nbytes(self) -> int:
        """Physical end of the compressed chunk region."""
        with self._ch_lock:
            return self._table.end

    # -- codec offload ------------------------------------------------------
    def _map_codec(self, fn, items: list) -> list:
        """Apply ``fn`` to every item, splitting large batches across the
        codec executor (submit ``width - 1`` batches, run the last
        inline); results come back in item order."""
        ex = self._executor
        if (ex is None or len(items) < 4
                or self.deterministic_only or faultsites.any_active()):
            return [fn(it) for it in items]
        width = min(max(1, ex.threads), len(items))
        size = (len(items) + width - 1) // width
        batches = [items[i:i + size] for i in range(0, len(items), size)]
        run = lambda batch: [fn(it) for it in batch]  # noqa: E731
        futs = [ex.submit(run, b) for b in batches[:-1]]
        tail = run(batches[-1])
        out: list = []
        for f in futs:
            out.extend(ex.result(f))
        out.extend(tail)
        return out

    def _encode_many(self, raws: list) -> list[bytes]:
        codec, st = self._codec, self.codec_stats
        return self._map_codec(
            lambda raw: timed_frame_encode(codec, raw, st), raws)

    def _decode_many(self, payloads: list) -> list[bytes]:
        codec, st, nb = self._codec, self.codec_stats, self._nb
        return self._map_codec(
            lambda p: timed_frame_decode(codec, p, nb, st), payloads)

    # -- address decomposition ----------------------------------------------
    def _chunks_of(self, offset: int, length: int) -> range:
        nb = self._nb
        if offset % nb or length % nb:
            raise DRXFileError(
                f"compressed store access must be chunk-aligned: "
                f"offset {offset}, length {length}, chunk {nb} bytes"
            )
        return range(offset // nb, (offset + length) // nb)

    # -- reads ---------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        return self._read_chunks(list(self._chunks_of(offset, length)))

    def readv(self, extents: Sequence[Extent]) -> bytes:
        chunks: list[int] = []
        for off, length in extents:
            chunks.extend(self._chunks_of(off, length))
        return self._read_chunks(chunks)

    def _read_chunks(self, chunks: list[int]) -> bytes:
        nb = self._nb
        with self._ch_lock:
            slots = [self._table.get(c) for c in chunks]
        present = [(i, c, s) for i, (c, s) in enumerate(zip(chunks, slots))
                   if s is not None and s.length > 0]
        out = bytearray(len(chunks) * nb)     # absent chunks read as zeros
        if not present:
            return bytes(out)
        extents: list[list[int]] = []
        for _i, _c, s in present:             # merge physically adjacent
            if extents and extents[-1][0] + extents[-1][1] == s.offset:
                extents[-1][1] += s.length
            else:
                extents.append([s.offset, s.length])
        blob = memoryview(self._inner.readv(
            [(off, length) for off, length in extents]))
        payloads: list = []
        pos = 0
        for _i, c, s in present:
            payload = blob[pos:pos + s.length]
            pos += s.length
            if self._guard is not None:
                # a CRC mismatch over the compressed payload arbitrates
                # among the inner store's replica copies of the slot
                payload = self._guard.check_or_arbitrate(
                    c, payload, self._inner, s.offset, s.length)
            payloads.append(payload)
        raws = self._decode_many(payloads)
        for (i, _c, _s), raw in zip(present, raws):
            out[i * nb:(i + 1) * nb] = raw
        return bytes(out)

    # -- writes --------------------------------------------------------------
    def write(self, offset: int, data) -> None:
        self._write_chunks(list(self._chunks_of(offset, len(data))), data)

    def writev(self, extents: Sequence[Extent], data) -> None:
        mv = memoryview(data)
        total = sum(length for _off, length in extents)
        if total != len(mv):
            raise DRXFileError(
                f"writev: extents cover {total} bytes, data has {len(mv)}"
            )
        chunks: list[int] = []
        for off, length in extents:
            chunks.extend(self._chunks_of(off, length))
        self._write_chunks(chunks, mv)

    def _write_chunks(self, chunks: list[int], data) -> None:
        nb = self._nb
        mv = memoryview(data)
        payloads = self._encode_many(
            [mv[i * nb:(i + 1) * nb] for i in range(len(chunks))])
        with self._ch_lock:
            slots = [self._table.allocate(c, len(p))
                     for c, p in zip(chunks, payloads)]
            if self._guard is not None:
                for c, p in zip(chunks, payloads):
                    self._guard.record(c, p)
            if chunks:
                self._logical = max(self._logical,
                                    (max(chunks) + 1) * nb)
        extents: list[list[int]] = []
        blob = bytearray()
        for s, p in zip(slots, payloads):
            if extents and extents[-1][0] + extents[-1][1] == s.offset:
                extents[-1][1] += len(p)
            else:
                extents.append([s.offset, len(p)])
            blob += p
        if extents:
            self._inner.writev([(off, length) for off, length in extents],
                               bytes(blob))

    def replace(self, data) -> None:
        raise DRXFileError(
            "replace() is not supported on a compressed chunk store"
        )

    # -- geometry / lifecycle -------------------------------------------------
    @property
    def size(self) -> int:
        """The *logical* (uncompressed) size — what the pool's read-ahead
        bounds against and ``DRXFile.extend`` grows."""
        return self._logical

    def truncate(self, size: int) -> None:
        nb = self._nb
        if size % nb:
            raise DRXFileError(
                f"compressed store size must be chunk-aligned, got {size}"
            )
        with self._ch_lock:
            if size < self._logical:
                keep = size // nb
                for c in [c for c in self._table.indices() if c >= keep]:
                    self._table.remove(c)
                    if self._guard is not None:
                        self._guard.crcs.pop(c, None)
            self._logical = size

    def flush(self) -> None:
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()
