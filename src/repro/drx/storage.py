"""Byte-store backends for DRX array files.

DRX (the serial library) stores its pair of files "in any POSIX-compliant
Unix file system" — :class:`PosixByteStore` does exactly that with real
files.  :class:`MemoryByteStore` backs unit tests, and
:class:`PFSByteStore` adapts a simulated-PFS file so a serial DRX file
and a parallel DRX-MP file are byte-compatible (the same ``.xta`` layout
read through either library — tested in the integration suite).

All stores expose the same tiny interface: ``read``, ``write``, ``size``,
``truncate``, ``flush``, ``close``; reads past the end return zeros
(sparse semantics, which lazy segment materialization relies on).
"""

from __future__ import annotations

import os
import pathlib

from ..core.errors import DRXFileError
from ..pfs.pfile import PFSFile

__all__ = ["ByteStore", "PosixByteStore", "MemoryByteStore", "PFSByteStore"]


class ByteStore:
    """Abstract byte store interface (see module docstring)."""

    def read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def write(self, offset: int, data: bytes) -> None:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def truncate(self, size: int) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class PosixByteStore(ByteStore):
    """A real file accessed with ``os.pread``/``os.pwrite``."""

    def __init__(self, path: str | pathlib.Path, mode: str = "r+") -> None:
        self.path = pathlib.Path(path)
        if mode == "r":
            flags = os.O_RDONLY
        elif mode == "r+":
            flags = os.O_RDWR
        elif mode == "x+":
            flags = os.O_RDWR | os.O_CREAT | os.O_EXCL
        elif mode == "w+":
            flags = os.O_RDWR | os.O_CREAT | os.O_TRUNC
        else:
            raise DRXFileError(f"unsupported mode {mode!r}")
        self._writable = mode != "r"
        try:
            self._fd = os.open(self.path, flags, 0o644)
        except OSError as exc:
            raise DRXFileError(f"cannot open {self.path}: {exc}") from exc
        self._closed = False

    def read(self, offset: int, length: int) -> bytes:
        data = os.pread(self._fd, length, offset)
        if len(data) < length:
            data += b"\x00" * (length - len(data))
        return data

    def write(self, offset: int, data: bytes) -> None:
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        os.pwrite(self._fd, data, offset)

    @property
    def size(self) -> int:
        return os.fstat(self._fd).st_size

    def truncate(self, size: int) -> None:
        if not self._writable:
            raise DRXFileError(f"{self.path} opened read-only")
        os.ftruncate(self._fd, size)

    def flush(self) -> None:
        if not self._closed:
            os.fsync(self._fd)

    def close(self) -> None:
        if not self._closed:
            os.close(self._fd)
            self._closed = True


class MemoryByteStore(ByteStore):
    """An in-memory byte store (unit tests, scratch arrays)."""

    def __init__(self) -> None:
        self._data = bytearray()

    def read(self, offset: int, length: int) -> bytes:
        end = offset + length
        chunk = bytes(self._data[offset:min(end, len(self._data))])
        return chunk + b"\x00" * (length - len(chunk))

    def write(self, offset: int, data: bytes) -> None:
        end = offset + len(data)
        if end > len(self._data):
            self._data.extend(b"\x00" * (end - len(self._data)))
        self._data[offset:end] = data

    @property
    def size(self) -> int:
        return len(self._data)

    def truncate(self, size: int) -> None:
        if size < len(self._data):
            del self._data[size:]
        else:
            self._data.extend(b"\x00" * (size - len(self._data)))


class PFSByteStore(ByteStore):
    """Adapter exposing a simulated-PFS file as a byte store."""

    def __init__(self, pfile: PFSFile) -> None:
        self._pfile = pfile

    def read(self, offset: int, length: int) -> bytes:
        return self._pfile.read(offset, length)

    def write(self, offset: int, data: bytes) -> None:
        self._pfile.write(offset, data)

    @property
    def size(self) -> int:
        return self._pfile.size

    def truncate(self, size: int) -> None:
        self._pfile.set_size(size)
