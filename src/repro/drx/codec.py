"""Per-chunk compression codecs for DRX chunk payloads.

PRs 1 and 4 optimized *how* bytes move (coalesced vectored I/O,
concurrent per-server dispatch); this layer reduces *how many* bytes
move.  A codec transforms one raw chunk payload (always exactly
``chunk_nbytes`` bytes) into a variable-length compressed payload and
back.  The design follows the HDF5-filter / ArrayBridge model: the chunk
is the unit of compression, the codec choice is a per-array property
persisted in the meta-data, and the physical placement of compressed
chunks is decoupled from the logical address through a slot-allocation
table (:mod:`repro.drx.chunkalloc`).

Available codecs (registry names):

``none``
    Identity.  Arrays created with ``codec="none"`` bypass this module
    entirely and keep the historical direct-placement layout
    (``offset = F*(index) * chunk_nbytes``) bit for bit.
``zlib`` / ``zlib:<level>``
    DEFLATE over the raw chunk bytes (level 6 unless given).
``delta+zlib`` / ``delta+zlib:<level>``
    Element-wise integer delta (on the dtype-width words, wrapping
    arithmetic, so the transform is exactly invertible for any bit
    pattern) followed by DEFLATE — the classic trick for smooth numeric
    data, where neighbouring elements share high-order bytes.

Stored payload frame
--------------------

Every stored payload is ``tag byte + body``.  Tag ``1`` means "codec
output"; tag ``0`` means "raw chunk bytes" — the escape hatch taken when
compression would *grow* the chunk (incompressible data), bounding the
worst case at one byte of overhead per chunk.  The frame is what the
per-chunk CRC32 covers, so integrity checking, replica arbitration and
scrubbing operate on the stored (compressed) bytes without decoding.

:class:`CodecStats` aggregates the byte and wall-time accounting that
the compression benchmark and the ``DRXFile.codec_stats`` surface
report.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.errors import DRXFileError, DRXFormatError

__all__ = ["Codec", "NoneCodec", "ZlibCodec", "DeltaZlibCodec",
           "CodecStats", "get_codec", "codec_names", "default_codec_name",
           "CODEC_ENV", "TAG_RAW", "TAG_CODED"]

#: Environment variable naming the codec test/bench sweeps should use.
CODEC_ENV = "DRX_CODEC"

#: Frame tags (first byte of every stored payload).
TAG_RAW = 0      #: body is the raw chunk bytes (codec would have grown it)
TAG_CODED = 1    #: body is the codec's encoded output


def default_codec_name() -> str:
    """The codec named by ``DRX_CODEC`` (``"none"`` when unset/empty).

    Tests and benchmarks use this to sweep the same scenario over the
    CI codec matrix; the library itself never consults the environment
    when creating arrays.
    """
    name = os.environ.get(CODEC_ENV, "").strip()
    return name if name else "none"


# ---------------------------------------------------------------------------
# codecs
# ---------------------------------------------------------------------------

class Codec:
    """One chunk-payload transform.

    ``encode`` maps the raw chunk bytes to a compressed body; ``decode``
    inverts it given the expected raw size.  Codecs are stateless and
    thread-safe — the executor offload encodes/decodes different chunks
    on different threads through one shared instance.
    """

    #: canonical registry name (persisted in the meta-data)
    name = "abstract"

    def encode(self, raw) -> bytes:
        raise NotImplementedError

    def decode(self, body, out_nbytes: int) -> bytes:
        raise NotImplementedError

    # -- framing -----------------------------------------------------------
    def frame_encode(self, raw) -> bytes:
        """Encode ``raw`` into a stored payload (tag + body).

        Falls back to storing the raw bytes (tag 0) whenever the codec
        output would be no smaller, so incompressible chunks cost one
        byte, never a blow-up.
        """
        mv = memoryview(raw)
        body = self.encode(mv)
        if len(body) >= len(mv):
            return b"\x00" + bytes(mv)
        return b"\x01" + body

    def frame_decode(self, payload, out_nbytes: int) -> bytes:
        """Decode a stored payload back to the raw chunk bytes."""
        mv = memoryview(payload)
        if len(mv) < 1:
            raise DRXFormatError("empty compressed chunk payload")
        tag = mv[0]
        body = mv[1:]
        if tag == TAG_RAW:
            if len(body) != out_nbytes:
                raise DRXFormatError(
                    f"raw-tagged chunk payload holds {len(body)} bytes, "
                    f"expected {out_nbytes}"
                )
            return bytes(body)
        if tag != TAG_CODED:
            raise DRXFormatError(f"unknown chunk payload tag {tag}")
        out = self.decode(body, out_nbytes)
        if len(out) != out_nbytes:
            raise DRXFormatError(
                f"codec {self.name!r} decoded {len(out)} bytes, "
                f"expected {out_nbytes}"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class NoneCodec(Codec):
    """Identity codec (present for registry completeness; ``codec="none"``
    arrays never route through the compression layer at all)."""

    name = "none"

    def encode(self, raw) -> bytes:
        return bytes(raw)

    def decode(self, body, out_nbytes: int) -> bytes:
        return bytes(body)


class ZlibCodec(Codec):
    """DEFLATE over the raw chunk bytes."""

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise DRXFileError(f"zlib level must be in 1..9, got {level}")
        self.level = level
        self.name = "zlib" if level == 6 else f"zlib:{level}"

    def encode(self, raw) -> bytes:
        return zlib.compress(bytes(raw), self.level)

    def decode(self, body, out_nbytes: int) -> bytes:
        try:
            return zlib.decompress(bytes(body))
        except zlib.error as exc:
            raise DRXFormatError(f"corrupt zlib chunk body: {exc}") from exc


class DeltaZlibCodec(Codec):
    """Word-wise wrapping delta, then DEFLATE.

    The delta runs over fixed-width integer words (``word_nbytes`` — the
    element itemsize, or 8 for wider types such as complex128).  All
    arithmetic wraps mod ``2**(8*word)``, so any bit pattern (including
    float payloads reinterpreted as integers) round-trips exactly.
    Payloads whose size is not a multiple of the word width keep an
    uncompressed remainder tail.
    """

    _WORD_DTYPES = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}

    def __init__(self, level: int = 6, word_nbytes: int = 8) -> None:
        if not 1 <= level <= 9:
            raise DRXFileError(f"zlib level must be in 1..9, got {level}")
        if word_nbytes not in self._WORD_DTYPES:
            word_nbytes = 8
        self.level = level
        self.word_nbytes = word_nbytes
        self.name = "delta+zlib" if level == 6 else f"delta+zlib:{level}"

    def _split(self, mv: memoryview) -> tuple[np.ndarray, bytes]:
        w = self.word_nbytes
        head = len(mv) - (len(mv) % w)
        words = np.frombuffer(mv[:head], dtype=self._WORD_DTYPES[w])
        return words, bytes(mv[head:])

    def encode(self, raw) -> bytes:
        words, tail = self._split(memoryview(raw))
        if words.size:
            delta = np.empty_like(words)
            delta[0] = words[0]
            np.subtract(words[1:], words[:-1], out=delta[1:])
            body = delta.tobytes() + tail
        else:
            body = tail
        return zlib.compress(body, self.level)

    def decode(self, body, out_nbytes: int) -> bytes:
        try:
            flat = zlib.decompress(bytes(body))
        except zlib.error as exc:
            raise DRXFormatError(f"corrupt delta chunk body: {exc}") from exc
        if len(flat) != out_nbytes:
            raise DRXFormatError(
                f"delta chunk decoded {len(flat)} bytes, "
                f"expected {out_nbytes}"
            )
        words, tail = self._split(memoryview(flat))
        if not words.size:
            return flat
        return np.cumsum(words, dtype=words.dtype).tobytes() + tail


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def _parse_level(spec: str, base: str) -> int:
    """Decode ``base`` / ``base:<level>`` codec names."""
    if spec == base:
        return 6
    level = spec[len(base) + 1:]
    try:
        return int(level)
    except ValueError:
        raise DRXFileError(f"bad codec level in {spec!r}") from None


def get_codec(name: str, word_nbytes: int = 8) -> Codec:
    """Resolve a registry name to a codec instance.

    ``word_nbytes`` parameterizes the delta transform (pass the array's
    element itemsize); other codecs ignore it.
    """
    spec = str(name).strip().lower()
    if spec in ("", "none"):
        return NoneCodec()
    if spec == "zlib" or spec.startswith("zlib:"):
        return ZlibCodec(_parse_level(spec, "zlib"))
    if spec in ("delta", "delta+zlib") or spec.startswith("delta+zlib:"):
        level = 6 if spec == "delta" else _parse_level(spec, "delta+zlib")
        return DeltaZlibCodec(level, word_nbytes=word_nbytes)
    raise DRXFileError(
        f"unknown codec {name!r}; known: {', '.join(codec_names())}"
    )


def codec_names() -> list[str]:
    """The canonical registry names (levels elided)."""
    return ["none", "zlib", "zlib:<level>", "delta+zlib",
            "delta+zlib:<level>"]


# ---------------------------------------------------------------------------
# accounting
# ---------------------------------------------------------------------------

@dataclass
class CodecStats:
    """Cumulative compression counters for one array handle.

    ``raw_bytes`` / ``stored_bytes`` compare the logical chunk bytes
    against the framed payload bytes actually moved through the backing
    store; their quotient is the achieved compression ``ratio``.  The
    wall-time counters sum the CPU spent inside encode/decode (across
    executor threads, so they can exceed elapsed time when the offload
    overlaps).  The ``note_*`` helpers serialize on a private lock —
    executor batches report from worker threads.
    """

    encoded_chunks: int = 0
    decoded_chunks: int = 0
    raw_bytes: int = 0        #: uncompressed chunk bytes through the codec
    stored_bytes: int = 0     #: framed payload bytes (what the store moves)
    stored_raw: int = 0       #: chunks stored with the raw-passthrough tag
    encode_time: float = 0.0  #: seconds inside encode (summed over threads)
    decode_time: float = 0.0  #: seconds inside decode (summed over threads)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    @property
    def ratio(self) -> float:
        """Compression ratio raw/stored (1.0 when nothing moved yet)."""
        return self.raw_bytes / self.stored_bytes if self.stored_bytes \
            else 1.0

    @property
    def compressed_bytes(self) -> int:
        """Alias for ``stored_bytes`` (the Stats field name of the
        benchmark surface)."""
        return self.stored_bytes

    @property
    def codec_time(self) -> float:
        return self.encode_time + self.decode_time

    def note_encode(self, raw_nbytes: int, stored_nbytes: int,
                    seconds: float, passthrough: bool) -> None:
        with self._lock:
            self.encoded_chunks += 1
            self.raw_bytes += raw_nbytes
            self.stored_bytes += stored_nbytes
            self.encode_time += seconds
            if passthrough:
                self.stored_raw += 1

    def note_decode(self, raw_nbytes: int, stored_nbytes: int,
                    seconds: float) -> None:
        with self._lock:
            self.decoded_chunks += 1
            self.decode_time += seconds

    def snapshot(self) -> "CodecStats":
        return replace(self)


def timed_frame_encode(codec: Codec, raw, stats: CodecStats | None) -> bytes:
    """``frame_encode`` with stats accounting (helper for the store)."""
    t0 = time.perf_counter()
    payload = codec.frame_encode(raw)
    if stats is not None:
        stats.note_encode(len(memoryview(raw)), len(payload),
                          time.perf_counter() - t0,
                          passthrough=payload[0] == TAG_RAW)
    return payload


def timed_frame_decode(codec: Codec, payload, out_nbytes: int,
                       stats: CodecStats | None) -> bytes:
    """``frame_decode`` with stats accounting (helper for the store)."""
    t0 = time.perf_counter()
    raw = codec.frame_decode(payload, out_nbytes)
    if stats is not None:
        stats.note_decode(out_nbytes, len(memoryview(payload)),
                          time.perf_counter() - t0)
    return raw
