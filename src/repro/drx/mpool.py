"""An Mpool-style buffer pool (the BerkeleyDB Mpool analog).

The paper: "DRX has the added feature that the memory arrays can be
maintained as either conventional arrays or memory resident extendible
arrays with I/O caching using the BerkeleyDB Mpool sub-system."

The pool caches fixed-size *pages* (one page = one chunk of the array
file) with the classic Mpool discipline:

* ``get(pageno)`` pins a page, faulting it in from the store on a miss;
* ``get_many(pagenos)`` pins a batch, faulting every miss with a single
  vectored store call over the coalesced contiguous runs;
* ``put(pageno, dirty=...)`` unpins it, optionally marking it dirty;
* clean/unpinned pages are evicted LRU; dirty pages are written back on
  eviction — together with any dirty unpinned neighbours at consecutive
  page numbers, so one eviction drains a whole contiguous run — and on
  ``flush``, which writes the dirty set sorted by page number in
  coalesced runs (a sequential pass over the file, not LRU order);
* pinned pages are never evicted; exhausting the pool with pins raises.

Hit/miss/eviction/write-back counters feed experiment E7 (cache size vs
locality sweeps); the ``syscalls``/``coalesced_runs`` counters quantify
how much run coalescing compresses the pool's store traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import DRXError
from .faultpoints import crash_point
from .ioplan import coalesce_addresses
from .storage import ByteStore

__all__ = ["Mpool", "MpoolStats"]


@dataclass
class MpoolStats:
    """Cumulative buffer-pool counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    #: physical store transfers the pool issued (faults + write-backs)
    syscalls: int = 0
    #: contiguous runs moved through vectored (batched) transfers
    coalesced_runs: int = 0
    bytes_faulted: int = 0
    bytes_written: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def bytes_per_call(self) -> float:
        """Mean bytes per store transfer (0 when no I/O happened)."""
        total = self.bytes_faulted + self.bytes_written
        return total / self.syscalls if self.syscalls else 0.0


class _Page:
    __slots__ = ("buf", "pins", "dirty")

    def __init__(self, buf: np.ndarray) -> None:
        self.buf = buf
        self.pins = 0
        self.dirty = False


class Mpool:
    """A pinned-page LRU buffer pool over a byte store."""

    def __init__(self, store: ByteStore, page_size: int,
                 max_pages: int = 64, guard=None) -> None:
        if page_size < 1:
            raise DRXError(f"page size must be >= 1, got {page_size}")
        if max_pages < 1:
            raise DRXError(f"pool must hold >= 1 page, got {max_pages}")
        self.store = store
        self.page_size = page_size
        self.max_pages = max_pages
        #: optional integrity hook (``repro.drx.resilience.ChecksumGuard``):
        #: ``check(pageno, bytes)`` on every fault-in, ``record(pageno,
        #: bytes)`` on every write-back — the pool is where chunk bytes
        #: cross the store boundary, so checksums are enforced here.
        self.guard = guard
        self.stats = MpoolStats()
        #: pageno -> page, in LRU order (oldest first)
        self._pages: "OrderedDict[int, _Page]" = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, pageno: int) -> np.ndarray:
        """Pin page ``pageno`` and return its byte buffer (uint8 view).

        The caller mutates the buffer in place and must balance every
        ``get`` with a ``put``.
        """
        if pageno < 0:
            raise DRXError(f"negative page number {pageno}")
        page = self._pages.get(pageno)
        if page is not None:
            self.stats.hits += 1
            self._pages.move_to_end(pageno)
        else:
            self.stats.misses += 1
            self._make_room(1)
            raw = self.store.read(pageno * self.page_size, self.page_size)
            self.stats.syscalls += 1
            self.stats.bytes_faulted += self.page_size
            raw = self._verify(pageno, raw, pageno * self.page_size)
            page = _Page(np.frombuffer(bytearray(raw), dtype=np.uint8))
            self._pages[pageno] = page
        page.pins += 1
        return page.buf

    def get_many(self, pagenos: Sequence[int]) -> list[np.ndarray]:
        """Pin a batch of pages, faulting all misses with one vectored
        store call over the coalesced contiguous runs.

        Returns the page buffers aligned with ``pagenos`` (duplicates are
        pinned once per occurrence).  The batch may not exceed the pool
        capacity — callers split larger requests (or stream around the
        pool entirely, as ``DRXFile`` does).
        """
        nos = [int(p) for p in pagenos]
        if any(p < 0 for p in nos):
            raise DRXError(f"negative page number in batch {nos!r}")
        distinct = sorted(set(nos))
        if len(distinct) > self.max_pages:
            raise DRXError(
                f"batch of {len(distinct)} pages exceeds pool capacity "
                f"{self.max_pages}"
            )
        resident: list[int] = []
        missing: list[int] = []
        for p in distinct:
            page = self._pages.get(p)
            if page is None:
                missing.append(p)
            else:
                page.pins += 1          # protect from eviction below
                self._pages.move_to_end(p)
                resident.append(p)
        self.stats.hits += len(resident)
        self.stats.misses += len(missing)
        if missing:
            try:
                self._fault_many(missing)
            except BaseException:
                for p in resident:
                    self._pages[p].pins -= 1
                raise
        # duplicates in the request pin once per occurrence, like get();
        # every distinct page (resident or just faulted) holds one
        # protective pin at this point, dropped after the real pins land
        for p in nos:
            self._pages[p].pins += 1
        for p in distinct:
            self._pages[p].pins -= 1
        return [self._pages[p].buf for p in nos]

    def _fault_many(self, missing: list[int]) -> None:
        """Fault the (sorted, absent) pages in with one vectored read."""
        self._make_room(len(missing))
        ps = self.page_size
        starts, counts = coalesce_addresses(
            np.asarray(missing, dtype=np.int64))
        extents = [(int(s) * ps, int(c) * ps)
                   for s, c in zip(starts, counts)]
        blob = self.store.readv(extents)
        self.stats.syscalls += len(extents)
        self.stats.coalesced_runs += len(extents)
        self.stats.bytes_faulted += len(blob)
        mv = memoryview(blob)
        for i, p in enumerate(missing):
            raw = self._verify(p, mv[i * ps:(i + 1) * ps], p * ps)
            buf = np.frombuffer(bytearray(raw), dtype=np.uint8)
            page = _Page(buf)
            page.pins = 1               # protective pin, see get_many
            self._pages[p] = page

    def _verify(self, pageno: int, raw, offset: int):
        """Run the integrity guard over a faulted-in page.

        Guards that can arbitrate (``check_or_arbitrate``) get the store
        handle so a CRC mismatch can be resolved from a replica copy —
        the returned bytes are then the arbitrated version; plain guards
        just verify in place.
        """
        if self.guard is None:
            return raw
        arbitrate = getattr(self.guard, "check_or_arbitrate", None)
        if arbitrate is not None:
            return arbitrate(pageno, raw, self.store, offset,
                             self.page_size)
        self.guard.check(pageno, raw)
        return raw

    def put(self, pageno: int, dirty: bool = False) -> None:
        """Unpin page ``pageno``, optionally marking it dirty."""
        page = self._pages.get(pageno)
        if page is None or page.pins == 0:
            raise DRXError(f"put of page {pageno} that is not pinned")
        page.dirty = page.dirty or dirty
        page.pins -= 1

    def put_many(self, pagenos: Sequence[int], dirty: bool = False) -> None:
        """Unpin every page of a batch (the inverse of :meth:`get_many`)."""
        for p in pagenos:
            self.put(int(p), dirty=dirty)

    def _make_room(self, needed: int) -> None:
        """Evict LRU unpinned pages until ``needed`` slots are free."""
        while len(self._pages) + needed > self.max_pages:
            victim = None
            for pageno, page in self._pages.items():   # LRU order
                if page.pins == 0:
                    victim = pageno
                    break
            if victim is None:
                raise DRXError(
                    f"buffer pool exhausted: all {self.max_pages} pages "
                    f"pinned"
                )
            vpage = self._pages[victim]
            self.stats.evictions += 1
            if vpage.dirty:
                self._writeback_cluster(victim, vpage)
            del self._pages[victim]

    def _writeback_cluster(self, pageno: int, page: _Page) -> None:
        """Write back ``pageno`` plus any dirty unpinned pages at
        consecutive page numbers — one contiguous run, one store call.

        The neighbours stay cached (now clean); clustering turns the
        LRU's scattered single-page write-backs into sequential runs.
        """
        members = [(pageno, page)]
        lo = pageno - 1
        while (nb := self._pages.get(lo)) is not None \
                and nb.dirty and nb.pins == 0:
            members.insert(0, (lo, nb))
            lo -= 1
        hi = pageno + 1
        while (nb := self._pages.get(hi)) is not None \
                and nb.dirty and nb.pins == 0:
            members.append((hi, nb))
            hi += 1
        self._writeback_batch(members)

    def _writeback(self, pageno: int, page: _Page) -> None:
        """Write back one page, passing its buffer zero-copy."""
        self.store.write(pageno * self.page_size, page.buf.data)
        if self.guard is not None:
            self.guard.record(pageno, page.buf.data)
        self.stats.writebacks += 1
        self.stats.syscalls += 1
        self.stats.bytes_written += self.page_size
        page.dirty = False

    def _writeback_batch(self, members: list[tuple[int, _Page]]) -> None:
        """Write back a set of dirty pages as sorted coalesced runs."""
        if not members:
            return
        if len(members) == 1:
            self._writeback(*members[0])
            return
        members = sorted(members, key=lambda m: m[0])
        ps = self.page_size
        starts, counts = coalesce_addresses(
            np.asarray([p for p, _pg in members], dtype=np.int64))
        extents = [(int(s) * ps, int(c) * ps)
                   for s, c in zip(starts, counts)]
        payload = b"".join(pg.buf.data for _p, pg in members)
        self.store.writev(extents, payload)
        if self.guard is not None:
            for p, pg in members:
                self.guard.record(p, pg.buf.data)
        self.stats.writebacks += len(members)
        self.stats.syscalls += len(extents)
        self.stats.coalesced_runs += len(extents)
        self.stats.bytes_written += len(payload)
        for _p, pg in members:
            pg.dirty = False

    # ------------------------------------------------------------------
    # coherence hooks for streaming I/O that bypasses the pool
    # ------------------------------------------------------------------
    def peek_dirty(self, pageno: int) -> np.ndarray | None:
        """The cached buffer of ``pageno`` if it is resident *and* dirty,
        else ``None``.  No pin, no LRU touch, no counters — used by
        streaming reads to stay coherent with unflushed writes."""
        page = self._pages.get(pageno)
        if page is not None and page.dirty:
            return page.buf
        return None

    def refresh(self, pageno: int, data) -> None:
        """Overwrite the cached copy of ``pageno`` (if resident) with the
        bytes just written to the store, clearing its dirty bit — used by
        streaming writes so stale cached pages cannot resurface."""
        page = self._pages.get(pageno)
        if page is not None:
            page.buf[:] = np.frombuffer(data, dtype=np.uint8)
            page.dirty = False

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty page in page-number order, coalescing
        consecutive pages into single vectored runs (pages stay cached)."""
        crash_point("mpool.flush.begin")
        dirty = [(p, pg) for p, pg in self._pages.items() if pg.dirty]
        self._writeback_batch(dirty)
        crash_point("mpool.flush.after_writeback")
        self.store.flush()

    def invalidate(self) -> None:
        """Drop every unpinned page (dirty ones are written back first,
        in sorted coalesced runs)."""
        self._writeback_batch(
            [(p, pg) for p, pg in self._pages.items()
             if pg.dirty and pg.pins == 0]
        )
        keep: "OrderedDict[int, _Page]" = OrderedDict()
        for pageno, page in self._pages.items():
            if page.pins > 0:
                keep[pageno] = page
        self._pages = keep

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def pinned_pages(self) -> int:
        return sum(1 for p in self._pages.values() if p.pins > 0)
