"""An Mpool-style buffer pool (the BerkeleyDB Mpool analog).

The paper: "DRX has the added feature that the memory arrays can be
maintained as either conventional arrays or memory resident extendible
arrays with I/O caching using the BerkeleyDB Mpool sub-system."

The pool caches fixed-size *pages* (one page = one chunk of the array
file) with the classic Mpool discipline:

* ``get(pageno)`` pins a page, faulting it in from the store on a miss;
* ``put(pageno, dirty=...)`` unpins it, optionally marking it dirty;
* clean/unpinned pages are evicted LRU; dirty pages are written back on
  eviction and on ``flush``;
* pinned pages are never evicted; exhausting the pool with pins raises.

Hit/miss/eviction/write-back counters feed experiment E7 (cache size vs
locality sweeps).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.errors import DRXError
from .storage import ByteStore

__all__ = ["Mpool", "MpoolStats"]


@dataclass
class MpoolStats:
    """Cumulative buffer-pool counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Page:
    __slots__ = ("buf", "pins", "dirty")

    def __init__(self, buf: np.ndarray) -> None:
        self.buf = buf
        self.pins = 0
        self.dirty = False


class Mpool:
    """A pinned-page LRU buffer pool over a byte store."""

    def __init__(self, store: ByteStore, page_size: int,
                 max_pages: int = 64) -> None:
        if page_size < 1:
            raise DRXError(f"page size must be >= 1, got {page_size}")
        if max_pages < 1:
            raise DRXError(f"pool must hold >= 1 page, got {max_pages}")
        self.store = store
        self.page_size = page_size
        self.max_pages = max_pages
        self.stats = MpoolStats()
        #: pageno -> page, in LRU order (oldest first)
        self._pages: "OrderedDict[int, _Page]" = OrderedDict()

    # ------------------------------------------------------------------
    def get(self, pageno: int) -> np.ndarray:
        """Pin page ``pageno`` and return its byte buffer (uint8 view).

        The caller mutates the buffer in place and must balance every
        ``get`` with a ``put``.
        """
        if pageno < 0:
            raise DRXError(f"negative page number {pageno}")
        page = self._pages.get(pageno)
        if page is not None:
            self.stats.hits += 1
            self._pages.move_to_end(pageno)
        else:
            self.stats.misses += 1
            self._make_room()
            raw = self.store.read(pageno * self.page_size, self.page_size)
            page = _Page(np.frombuffer(bytearray(raw), dtype=np.uint8))
            self._pages[pageno] = page
        page.pins += 1
        return page.buf

    def put(self, pageno: int, dirty: bool = False) -> None:
        """Unpin page ``pageno``, optionally marking it dirty."""
        page = self._pages.get(pageno)
        if page is None or page.pins == 0:
            raise DRXError(f"put of page {pageno} that is not pinned")
        page.dirty = page.dirty or dirty
        page.pins -= 1

    def _make_room(self) -> None:
        while len(self._pages) >= self.max_pages:
            victim = None
            for pageno, page in self._pages.items():   # LRU order
                if page.pins == 0:
                    victim = pageno
                    break
            if victim is None:
                raise DRXError(
                    f"buffer pool exhausted: all {self.max_pages} pages "
                    f"pinned"
                )
            page = self._pages.pop(victim)
            self.stats.evictions += 1
            if page.dirty:
                self._writeback(victim, page)

    def _writeback(self, pageno: int, page: _Page) -> None:
        self.store.write(pageno * self.page_size, page.buf.tobytes())
        self.stats.writebacks += 1
        page.dirty = False

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty page (pages stay cached)."""
        for pageno, page in self._pages.items():
            if page.dirty:
                self._writeback(pageno, page)
        self.store.flush()

    def invalidate(self) -> None:
        """Drop every unpinned page (dirty ones are written back first)."""
        keep: "OrderedDict[int, _Page]" = OrderedDict()
        for pageno, page in self._pages.items():
            if page.pins > 0:
                keep[pageno] = page
            elif page.dirty:
                self._writeback(pageno, page)
        self._pages = keep

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def pinned_pages(self) -> int:
        return sum(1 for p in self._pages.values() if p.pins > 0)
