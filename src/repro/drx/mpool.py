"""An Mpool-style buffer pool (the BerkeleyDB Mpool analog).

The paper: "DRX has the added feature that the memory arrays can be
maintained as either conventional arrays or memory resident extendible
arrays with I/O caching using the BerkeleyDB Mpool sub-system."

The pool caches fixed-size *pages* (one page = one chunk of the array
file) with the classic Mpool discipline:

* ``get(pageno)`` pins a page, faulting it in from the store on a miss;
* ``get_many(pagenos)`` pins a batch, faulting every miss with a single
  vectored store call over the coalesced contiguous runs;
* ``put(pageno, dirty=...)`` unpins it, optionally marking it dirty;
* clean/unpinned pages are evicted LRU; dirty pages are written back on
  eviction — together with any dirty unpinned neighbours at consecutive
  page numbers, so one eviction drains a whole contiguous run — and on
  ``flush``, which writes the dirty set sorted by page number in
  coalesced runs (a sequential pass over the file, not LRU order);
* pinned pages are never evicted; exhausting the pool with pins raises.

Hit/miss/eviction/write-back counters feed experiment E7 (cache size vs
locality sweeps); the ``syscalls``/``coalesced_runs`` counters quantify
how much run coalescing compresses the pool's store traffic.

Over a :class:`~repro.drx.storage.CompressedByteStore` the pool caches
*decompressed* pages: the adapter presents the logical chunk address
space, decodes on fault-in and recompresses on eviction write-back, so
hot pages pay the codec once, not per access.  The pool's ``guard`` is
``None`` in that configuration — CRC verification happens inside the
adapter, over the compressed payload at its physical slot.

Concurrency (optional, off unless an executor is attached):

* **Thread safety.**  Every public entry point runs under one reentrant
  lock, so the pool can be shared between the MPI-as-threads ranks and
  the executor's background tasks.
* **Read-ahead.**  An access-pattern detector watches ``get`` (scalar
  stride) and ``get_many`` (repeated batch stride, the shape DRX plan
  execution produces).  Once a stride repeats, the predicted next pages
  are read asynchronously through the executor.  Prefetched pages are
  *adopted* on first use — installed clean, checksum-verified, counted
  as ``hits`` + ``prefetch_hits`` — and never evict pinned pages (they
  go through the normal ``_make_room``).  A prefetch that is never used
  is simply dropped (``prefetch_dropped``); a failed background read is
  ignored and the page faults normally.
* **Write-behind.**  Eviction write-backs are handed to the executor:
  the payload is copied, counters and checksums are recorded at submit
  time (identical values to the synchronous path), and the future joins
  a bounded dirty queue.  Overlapping submissions wait for their
  predecessors (per-page FIFO), demand faults wait for overlapping
  in-flight write-backs before touching the store, and ``flush()`` /
  ``invalidate()`` / ``drain_writebehind()`` are full barriers.

Everything stays strictly serial — bit- and counter-identical to the
pre-executor pool — when no executor is attached, when the store is
marked ``deterministic_only`` (fault injectors), or while a fault plan
is armed (:func:`repro.core.faultsites.any_active`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core import faultsites
from ..core.errors import DRXError
from .faultpoints import crash_point
from .ioplan import coalesce_addresses
from .storage import ByteStore

__all__ = ["Mpool", "MpoolStats"]


@dataclass
class MpoolStats:
    """Cumulative buffer-pool counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    #: physical store transfers the pool issued (faults + write-backs +
    #: background read-ahead)
    syscalls: int = 0
    #: contiguous runs moved through vectored (batched) transfers
    coalesced_runs: int = 0
    bytes_faulted: int = 0
    bytes_written: int = 0
    # -- read-ahead -------------------------------------------------------
    prefetch_issued: int = 0   #: background read-ahead store calls issued
    prefetch_pages: int = 0    #: pages covered by issued read-aheads
    prefetch_hits: int = 0     #: accesses served by adopting a read-ahead
    prefetch_dropped: int = 0  #: prefetched pages discarded unused
    # -- write-behind -----------------------------------------------------
    writebehind_runs: int = 0   #: write-backs handed to the executor
    writebehind_bytes: int = 0  #: bytes written through write-behind
    writebehind_stalls: int = 0  #: submits that blocked on the full queue

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def bytes_per_call(self) -> float:
        """Mean bytes per store transfer (0 when no I/O happened)."""
        total = self.bytes_faulted + self.bytes_written
        return total / self.syscalls if self.syscalls else 0.0


class _Page:
    __slots__ = ("buf", "pins", "dirty")

    def __init__(self, buf: np.ndarray) -> None:
        self.buf = buf
        self.pins = 0
        self.dirty = False


class Mpool:
    """A pinned-page LRU buffer pool over a byte store."""

    def __init__(self, store: ByteStore, page_size: int,
                 max_pages: int = 64, guard=None, executor=None,
                 readahead: int = 8, write_behind: bool = True,
                 wb_queue: int = 4) -> None:
        if page_size < 1:
            raise DRXError(f"page size must be >= 1, got {page_size}")
        if max_pages < 1:
            raise DRXError(f"pool must hold >= 1 page, got {max_pages}")
        self.store = store
        self.page_size = page_size
        self.max_pages = max_pages
        #: optional integrity hook (``repro.drx.resilience.ChecksumGuard``):
        #: ``check(pageno, bytes)`` on every fault-in, ``record(pageno,
        #: bytes)`` on every write-back — the pool is where chunk bytes
        #: cross the store boundary, so checksums are enforced here.
        self.guard = guard
        self.stats = MpoolStats()
        #: pageno -> page, in LRU order (oldest first)
        self._pages: "OrderedDict[int, _Page]" = OrderedDict()
        #: single reentrant lock around all page-table mutation — the
        #: pool is shared between rank threads and background tasks
        self._lock = threading.RLock()
        # -- executor wiring (None = the exact historical serial pool) --
        if executor is not None and getattr(store, "deterministic_only",
                                            False):
            executor = None     # order-sensitive store: stay serial
        self._executor = executor
        self._readahead = (max(0, min(int(readahead), max_pages // 2))
                           if executor is not None else 0)
        self._write_behind = bool(write_behind) and executor is not None
        self._wb_queue = max(1, int(wb_queue))
        #: pending write-behind: (future, frozenset of page numbers)
        self._wb: "deque[tuple[Future, frozenset[int]]]" = deque()
        #: pageno -> in-flight/landed read-ahead future; one future may
        #: serve several keys (it read a contiguous run)
        self._pf: dict[int, Future] = {}
        # scalar stride detector (get)
        self._ra_last: int | None = None
        self._ra_stride = 0
        self._ra_streak = 0
        # batch stride detector (get_many)
        self._b_start: int | None = None
        self._b_stride = 0
        self._b_streak = 0

    # ------------------------------------------------------------------
    def get(self, pageno: int) -> np.ndarray:
        """Pin page ``pageno`` and return its byte buffer (uint8 view).

        The caller mutates the buffer in place and must balance every
        ``get`` with a ``put``.
        """
        if pageno < 0:
            raise DRXError(f"negative page number {pageno}")
        with self._lock:
            page = self._pages.get(pageno)
            if page is not None:
                self.stats.hits += 1
                self._pages.move_to_end(pageno)
            else:
                page = self._adopt_prefetch(pageno)
                if page is not None:
                    self.stats.hits += 1
                    self.stats.prefetch_hits += 1
                else:
                    self.stats.misses += 1
                    self._wb_wait_overlap({pageno})
                    self._make_room(1)
                    raw = self.store.read(pageno * self.page_size,
                                          self.page_size)
                    self.stats.syscalls += 1
                    self.stats.bytes_faulted += self.page_size
                    raw = self._verify(pageno, raw, pageno * self.page_size)
                    page = _Page(np.frombuffer(bytearray(raw),
                                               dtype=np.uint8))
                    self._pages[pageno] = page
            page.pins += 1
            self._note_scalar_access(pageno)
            return page.buf

    def get_many(self, pagenos: Sequence[int]) -> list[np.ndarray]:
        """Pin a batch of pages, faulting all misses with one vectored
        store call over the coalesced contiguous runs.

        Returns the page buffers aligned with ``pagenos`` (duplicates are
        pinned once per occurrence).  The batch may not exceed the pool
        capacity — callers split larger requests (or stream around the
        pool entirely, as ``DRXFile`` does).
        """
        nos = [int(p) for p in pagenos]
        if any(p < 0 for p in nos):
            raise DRXError(f"negative page number in batch {nos!r}")
        distinct = sorted(set(nos))
        if len(distinct) > self.max_pages:
            raise DRXError(
                f"batch of {len(distinct)} pages exceeds pool capacity "
                f"{self.max_pages}"
            )
        with self._lock:
            resident: list[int] = []
            missing: list[int] = []
            for p in distinct:
                page = self._pages.get(p)
                if page is None:
                    missing.append(p)
                else:
                    page.pins += 1          # protect from eviction below
                    self._pages.move_to_end(p)
                    resident.append(p)
            self.stats.hits += len(resident)
            self.stats.misses += len(missing)
            if missing:
                try:
                    self._fault_many(missing)
                except BaseException:
                    for p in resident:
                        self._pages[p].pins -= 1
                    raise
            # duplicates in the request pin once per occurrence, like
            # get(); every distinct page (resident or just faulted) holds
            # one protective pin at this point, dropped after the real
            # pins land
            for p in nos:
                self._pages[p].pins += 1
            for p in distinct:
                self._pages[p].pins -= 1
            self._note_batch_access(distinct)
            return [self._pages[p].buf for p in nos]

    def _fault_many(self, missing: list[int]) -> None:
        """Fault the (sorted, absent) pages in — adopting any pending
        read-aheads, then one vectored read for the rest."""
        adopted: list[int] = []
        if self._pf:
            rest: list[int] = []
            for p in missing:
                if p in self._pf:
                    adopted.append(p)
                else:
                    rest.append(p)
            missing = rest
        for p in adopted:
            page = self._adopt_prefetch(p)
            if page is None:                 # background read failed
                missing.append(p)
            else:
                # counted as a miss above; credit the read-ahead only
                self.stats.prefetch_hits += 1
                page.pins += 1               # protective pin, see get_many
        if adopted:
            missing.sort()
        if not missing:
            return
        self._wb_wait_overlap(set(missing))
        self._make_room(len(missing))
        ps = self.page_size
        starts, counts = coalesce_addresses(
            np.asarray(missing, dtype=np.int64))
        extents = [(int(s) * ps, int(c) * ps)
                   for s, c in zip(starts, counts)]
        blob = self.store.readv(extents)
        self.stats.syscalls += len(extents)
        self.stats.coalesced_runs += len(extents)
        self.stats.bytes_faulted += len(blob)
        mv = memoryview(blob)
        for i, p in enumerate(missing):
            raw = self._verify(p, mv[i * ps:(i + 1) * ps], p * ps)
            buf = np.frombuffer(bytearray(raw), dtype=np.uint8)
            page = _Page(buf)
            page.pins = 1               # protective pin, see get_many
            self._pages[p] = page

    def _verify(self, pageno: int, raw, offset: int):
        """Run the integrity guard over a faulted-in page.

        Guards that can arbitrate (``check_or_arbitrate``) get the store
        handle so a CRC mismatch can be resolved from a replica copy —
        the returned bytes are then the arbitrated version; plain guards
        just verify in place.
        """
        if self.guard is None:
            return raw
        arbitrate = getattr(self.guard, "check_or_arbitrate", None)
        if arbitrate is not None:
            return arbitrate(pageno, raw, self.store, offset,
                             self.page_size)
        self.guard.check(pageno, raw)
        return raw

    def put(self, pageno: int, dirty: bool = False) -> None:
        """Unpin page ``pageno``, optionally marking it dirty."""
        with self._lock:
            page = self._pages.get(pageno)
            if page is None or page.pins == 0:
                raise DRXError(f"put of page {pageno} that is not pinned")
            page.dirty = page.dirty or dirty
            page.pins -= 1

    def put_many(self, pagenos: Sequence[int], dirty: bool = False) -> None:
        """Unpin every page of a batch (the inverse of :meth:`get_many`)."""
        with self._lock:
            for p in pagenos:
                self.put(int(p), dirty=dirty)

    def _make_room(self, needed: int) -> None:
        """Evict LRU unpinned pages until ``needed`` slots are free."""
        while len(self._pages) + needed > self.max_pages:
            victim = None
            for pageno, page in self._pages.items():   # LRU order
                if page.pins == 0:
                    victim = pageno
                    break
            if victim is None:
                raise DRXError(
                    f"buffer pool exhausted: all {self.max_pages} pages "
                    f"pinned"
                )
            vpage = self._pages[victim]
            self.stats.evictions += 1
            if vpage.dirty:
                self._writeback_cluster(victim, vpage)
            del self._pages[victim]

    def _writeback_cluster(self, pageno: int, page: _Page) -> None:
        """Write back ``pageno`` plus any dirty unpinned pages at
        consecutive page numbers — one contiguous run, one store call.

        The neighbours stay cached (now clean); clustering turns the
        LRU's scattered single-page write-backs into sequential runs.
        """
        members = [(pageno, page)]
        lo = pageno - 1
        while (nb := self._pages.get(lo)) is not None \
                and nb.dirty and nb.pins == 0:
            members.insert(0, (lo, nb))
            lo -= 1
        hi = pageno + 1
        while (nb := self._pages.get(hi)) is not None \
                and nb.dirty and nb.pins == 0:
            members.append((hi, nb))
            hi += 1
        if self._wb_allowed():
            self._writeback_async(members)
        else:
            self._writeback_batch(members)

    def _writeback(self, pageno: int, page: _Page) -> None:
        """Write back one page, passing its buffer zero-copy."""
        self.store.write(pageno * self.page_size, page.buf.data)
        if self.guard is not None:
            self.guard.record(pageno, page.buf.data)
        self.stats.writebacks += 1
        self.stats.syscalls += 1
        self.stats.bytes_written += self.page_size
        page.dirty = False

    def _writeback_batch(self, members: list[tuple[int, _Page]]) -> None:
        """Write back a set of dirty pages as sorted coalesced runs."""
        if not members:
            return
        if len(members) == 1:
            self._writeback(*members[0])
            return
        members = sorted(members, key=lambda m: m[0])
        ps = self.page_size
        starts, counts = coalesce_addresses(
            np.asarray([p for p, _pg in members], dtype=np.int64))
        extents = [(int(s) * ps, int(c) * ps)
                   for s, c in zip(starts, counts)]
        payload = b"".join(pg.buf.data for _p, pg in members)
        self.store.writev(extents, payload)
        if self.guard is not None:
            for p, pg in members:
                self.guard.record(p, pg.buf.data)
        self.stats.writebacks += len(members)
        self.stats.syscalls += len(extents)
        self.stats.coalesced_runs += len(extents)
        self.stats.bytes_written += len(payload)
        for _p, pg in members:
            pg.dirty = False

    # ------------------------------------------------------------------
    # write-behind (executor-backed eviction write-backs)
    # ------------------------------------------------------------------
    def _wb_allowed(self) -> bool:
        """Write-behind only without armed fault machinery: crash tests
        reason about exactly which bytes are down at each crash point."""
        return self._write_behind and not faultsites.any_active()

    def _writeback_async(self, members: list[tuple[int, _Page]]) -> None:
        """Hand a write-back run to the executor.

        The payload is *copied* (the pages stay cached and may be
        re-dirtied while the write is in flight), checksums and counters
        are recorded at submit time — identical values to the
        synchronous path — and ordering is preserved by waiting for any
        pending write-behind touching the same pages (per-page FIFO)
        and by the bounded queue.
        """
        members = sorted(members, key=lambda m: m[0])
        pages = frozenset(p for p, _pg in members)
        self._wb_wait_overlap(pages)
        while len(self._wb) >= self._wb_queue:
            self.stats.writebehind_stalls += 1
            fut, _pages = self._wb.popleft()
            fut.result()
        ps = self.page_size
        if len(members) == 1:
            pageno, page = members[0]
            payload = bytes(page.buf.data)
            fut = self._executor.submit(
                self.store.write, pageno * ps, payload,
                key=("mpool-wb", id(self), pageno, 1))
            if self.guard is not None:
                self.guard.record(pageno, payload)
            self.stats.writebacks += 1
            self.stats.syscalls += 1
            self.stats.bytes_written += ps
        else:
            starts, counts = coalesce_addresses(
                np.asarray([p for p, _pg in members], dtype=np.int64))
            extents = [(int(s) * ps, int(c) * ps)
                       for s, c in zip(starts, counts)]
            payload = b"".join(bytes(pg.buf.data) for _p, pg in members)
            fut = self._executor.submit(
                self.store.writev, extents, payload,
                key=("mpool-wb", id(self), members[0][0], len(members)))
            if self.guard is not None:
                mv = memoryview(payload)
                for i, (p, _pg) in enumerate(members):
                    self.guard.record(p, mv[i * ps:(i + 1) * ps])
            self.stats.writebacks += len(members)
            self.stats.syscalls += len(extents)
            self.stats.coalesced_runs += len(extents)
            self.stats.bytes_written += len(payload)
        self.stats.writebehind_runs += 1
        self.stats.writebehind_bytes += len(payload)
        for _p, pg in members:
            pg.dirty = False
        self._wb.append((fut, pages))

    def _wb_wait_overlap(self, pages: set[int] | frozenset[int]) -> None:
        """Wait for pending write-behind futures touching ``pages``.

        Demand faults call this before reading the store (a just-evicted
        page must not be re-read before its write-back lands), and new
        write-behind submissions call it so overlapping writes apply in
        submission order.
        """
        if not self._wb:
            return
        keep: "deque[tuple[Future, frozenset[int]]]" = deque()
        while self._wb:
            fut, wpages = self._wb.popleft()
            if wpages & pages:
                fut.result()
            else:
                keep.append((fut, wpages))
        self._wb = keep

    def _wb_drain(self) -> None:
        """Barrier: wait for every pending write-behind, re-raising the
        first failure."""
        error: BaseException | None = None
        while self._wb:
            fut, _pages = self._wb.popleft()
            try:
                fut.result()
            except BaseException as exc:  # noqa: BLE001
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def drain_writebehind(self) -> None:
        """Public barrier: every pending background write-back has
        reached the store when this returns.  Streaming I/O that
        bypasses the pool calls this before touching the store."""
        with self._lock:
            self._wb_drain()

    # ------------------------------------------------------------------
    # read-ahead (access-pattern detector + background faults)
    # ------------------------------------------------------------------
    def _note_scalar_access(self, pageno: int) -> None:
        """Feed the scalar stride detector; issue read-ahead on a
        repeating stride (2 consecutive equal strides)."""
        if self._readahead <= 0:
            return
        last = self._ra_last
        self._ra_last = pageno
        if last is None:
            return
        stride = pageno - last
        if stride != 0 and stride == self._ra_stride:
            self._ra_streak += 1
        else:
            self._ra_stride = stride
            self._ra_streak = 1 if stride != 0 else 0
        if self._ra_streak >= 2:
            self._maybe_prefetch(
                [pageno + stride * k
                 for k in range(1, self._readahead + 1)])

    def _note_batch_access(self, distinct: list[int]) -> None:
        """Feed the batch stride detector: DRX plan execution issues
        same-shaped batches at a constant page stride, so once the
        stride repeats, the *next* batch (this one shifted by the
        stride) is read ahead."""
        if self._readahead <= 0 or not distinct:
            return
        start = distinct[0]
        prev = self._b_start
        self._b_start = start
        if prev is None:
            return
        stride = start - prev
        if stride > 0 and stride == self._b_stride:
            self._b_streak += 1
        else:
            self._b_stride = stride
            self._b_streak = 1 if stride > 0 else 0
        if self._b_streak >= 2:
            self._maybe_prefetch(
                [p + stride for p in distinct][:self._readahead])

    def _maybe_prefetch(self, predicted: list[int]) -> None:
        """Issue background reads for the predicted pages (best effort).

        Skips pages already resident, already in flight, overlapping a
        pending write-back, or past the store's end.  Counters for the
        issued store traffic land immediately (deterministically —
        issuance depends only on the access sequence, never on
        completion timing).
        """
        ex = self._executor
        if ex is None or not predicted:
            return
        if faultsites.any_active():
            return
        ps = self.page_size
        limit = self.store.size
        wb_pages: set[int] = set()
        for _fut, wpages in self._wb:
            wb_pages |= wpages
        want = sorted({p for p in predicted
                       if p >= 0 and p * ps < limit
                       and p not in self._pages
                       and p not in self._pf
                       and p not in wb_pages})
        if len(want) < max(1, self._readahead // 2):
            # issue in blocks: trickling out the marginal page every
            # access would be adopted one access later with no time to
            # overlap anything — wait until half a window accumulates
            return
        if len(self._pf) > 4 * max(self._readahead, 1) + 8:
            self._pf_discard(wait=False)
        starts, counts = coalesce_addresses(
            np.asarray(want, dtype=np.int64))
        for s, c in zip(starts, counts):
            start, count = int(s), int(c)
            fut = ex.submit(self._pf_read, start, count,
                            key=("mpool-pf", id(self), start, count))
            for p in range(start, start + count):
                self._pf[p] = fut
            self.stats.prefetch_issued += 1
            self.stats.prefetch_pages += count
            self.stats.syscalls += 1
            self.stats.coalesced_runs += 1
            self.stats.bytes_faulted += count * ps

    def _pf_read(self, start: int, count: int) -> tuple[int, bytes]:
        """Executor task: one contiguous background read."""
        ps = self.page_size
        return start, self.store.readv([(start * ps, count * ps)])

    def _adopt_prefetch(self, pageno: int) -> _Page | None:
        """Install page ``pageno`` from a pending read-ahead, or return
        ``None`` (no read-ahead covers it / the background read failed —
        the caller faults normally)."""
        fut = self._pf.pop(pageno, None)
        if fut is None:
            return None
        try:
            start, blob = fut.result()
        except Exception:
            return None     # advisory data only; demand path recovers
        ps = self.page_size
        at = (pageno - start) * ps
        raw = self._verify(pageno, blob[at:at + ps], pageno * ps)
        self._make_room(1)
        page = _Page(np.frombuffer(bytearray(raw), dtype=np.uint8))
        self._pages[pageno] = page
        return page

    def _pf_discard(self, wait: bool) -> None:
        """Drop every pending read-ahead (counting unused pages as
        dropped).  With ``wait`` the futures are joined first — used
        before the store may close; otherwise the in-flight reads finish
        in the background and their results are simply never consumed."""
        if not self._pf:
            return
        futs = {id(f): f for f in self._pf.values()}
        self.stats.prefetch_dropped += len(self._pf)
        self._pf.clear()
        if wait:
            for f in futs.values():
                try:
                    f.result()
                except Exception:
                    pass

    def discard_prefetch(self) -> None:
        """Public form of :meth:`_pf_discard`: streaming writes bypass
        the pool, so any read-ahead still in flight could capture
        pre-write bytes and later resurface them — they are invalidated
        wholesale instead."""
        with self._lock:
            self._pf_discard(wait=False)

    # ------------------------------------------------------------------
    # coherence hooks for streaming I/O that bypasses the pool
    # ------------------------------------------------------------------
    def peek_dirty(self, pageno: int) -> np.ndarray | None:
        """The cached buffer of ``pageno`` if it is resident *and* dirty,
        else ``None``.  No pin, no LRU touch, no counters — used by
        streaming reads to stay coherent with unflushed writes."""
        with self._lock:
            page = self._pages.get(pageno)
            if page is not None and page.dirty:
                return page.buf
            return None

    def refresh(self, pageno: int, data) -> None:
        """Overwrite the cached copy of ``pageno`` (if resident) with the
        bytes just written to the store, clearing its dirty bit — used by
        streaming writes so stale cached pages cannot resurface."""
        with self._lock:
            page = self._pages.get(pageno)
            if page is not None:
                page.buf[:] = np.frombuffer(data, dtype=np.uint8)
                page.dirty = False

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write back every dirty page in page-number order, coalescing
        consecutive pages into single vectored runs (pages stay cached).

        Acts as the write-behind barrier: pending background write-backs
        are drained (and read-aheads retired) *before* the crash point
        fires, so the crash sites keep their exact serial meaning — at
        ``mpool.flush.begin`` no dirty page of this flush has been
        written and no background I/O is in flight.
        """
        with self._lock:
            self._wb_drain()
            self._pf_discard(wait=True)
            crash_point("mpool.flush.begin")
            dirty = [(p, pg) for p, pg in self._pages.items() if pg.dirty]
            self._writeback_batch(dirty)
            crash_point("mpool.flush.after_writeback")
            self.store.flush()

    def abandon(self) -> None:
        """Forget every page and pending prefetch WITHOUT writing
        anything back — the simulated-crash path.

        Background write-backs already in flight are awaited (they were
        issued before the crash instant; whether they land is the
        store's business, exactly as a real kernel may or may not have
        completed a queued write), but no *new* write-back is started
        and every dirty page is dropped on the floor.  Used by
        ``DRXFile.abandon()`` when the serve daemon dies abruptly.
        """
        with self._lock:
            self._pf_discard(wait=True)
            for fut, _pages in list(self._wb):
                try:
                    fut.result()
                except Exception:       # noqa: BLE001 - crash path
                    pass
            self._wb.clear()
            self._pages = OrderedDict()

    def invalidate(self) -> None:
        """Drop every unpinned page (dirty ones are written back first,
        in sorted coalesced runs); pending background I/O is retired."""
        with self._lock:
            self._wb_drain()
            self._pf_discard(wait=True)
            self._writeback_batch(
                [(p, pg) for p, pg in self._pages.items()
                 if pg.dirty and pg.pins == 0]
            )
            keep: "OrderedDict[int, _Page]" = OrderedDict()
            for pageno, page in self._pages.items():
                if page.pins > 0:
                    keep[pageno] = page
            self._pages = keep

    @property
    def cached_pages(self) -> int:
        with self._lock:
            return len(self._pages)

    @property
    def pinned_pages(self) -> int:
        with self._lock:
            return sum(1 for p in self._pages.values() if p.pins > 0)
