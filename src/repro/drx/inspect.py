"""Array-file inspection: ``ncdump -h`` / ``h5dump -H`` for DRX files.

``describe`` renders a human-readable report of an array file's
meta-data — shape, dtype, chunking, user attributes, and the full growth
history reconstructed from the axial vectors.  ``verify`` runs integrity
checks (consistency, addressing bijectivity, data-file size) and returns
the list of problems found, empty when the file is healthy.

Both accept a path to either container: the classic ``.xmd``/``.xta``
pair or the ``.drx`` single file.
"""

from __future__ import annotations

import pathlib

from ..core.errors import DRXError, DRXFileNotFoundError
from ..core.mapping import all_addresses
from ..core.metadata import DRXMeta
from .drxfile import DRXFile
from .singlefile import DRXSingleFile

__all__ = ["describe", "verify", "load_meta"]


def load_meta(path: str | pathlib.Path) -> tuple[DRXMeta, str, int]:
    """Read the meta-data of either container.

    Returns ``(meta, container_kind, data_bytes_present)``.
    """
    path = pathlib.Path(path)
    single = DRXSingleFile._with_suffix(path)
    xmd = path.with_name(path.name + DRXFile.XMD_SUFFIX)
    xta = path.with_name(path.name + DRXFile.XTA_SUFFIX)
    if single.exists():
        f = DRXSingleFile.open(path)
        try:
            meta = f.meta.replicate()
            present = max(0, f._raw.size - f._reserve)
        finally:
            f.close()
        return meta, "single-file (.drx)", present
    if xmd.exists() and xta.exists():
        meta = DRXMeta.from_bytes(xmd.read_bytes())
        return meta, "file pair (.xmd/.xta)", xta.stat().st_size
    raise DRXFileNotFoundError(f"no DRX array at {path}")


def describe(path: str | pathlib.Path) -> str:
    """A human-readable report of the array's meta-data."""
    meta, kind, present = load_meta(path)
    lines = [
        f"DRX array {pathlib.Path(path).name!r}  [{kind}]",
        f"  dtype         : {meta.dtype_name} ({meta.dtype})",
        f"  shape         : {meta.element_bounds}",
        f"  chunk shape   : {meta.chunk_shape}"
        f"  ({meta.chunk_elems} elems, {meta.chunk_nbytes} bytes)",
        f"  chunk grid    : {meta.chunk_bounds}"
        f"  ({meta.num_chunks} chunks, {meta.data_nbytes} data bytes)",
    ]
    if meta.codec != "none":
        slots = (meta.chunk_slots or {}).get("slots", [])
        stored = sum(int(s[2]) for s in slots)
        end = int((meta.chunk_slots or {}).get("end", 0))
        ratio = meta.data_nbytes / stored if stored else float("inf")
        lines.append(
            f"  codec         : {meta.codec}"
            f"  ({len(slots)} stored chunks, {stored} compressed bytes, "
            f"ratio {ratio:.2f}x, physical extent {end} bytes)"
        )
    attrs = meta.attrs
    if attrs:
        lines.append("  attributes    :")
        for k in sorted(attrs):
            lines.append(f"    {k} = {attrs[k]!r}")
    lines.append("  growth history (segments in allocation order):")
    for seg in meta.eci.segments:
        rec = seg.record
        lines.append(
            f"    @chunk {seg.start_address:>6}  +{seg.n_chunks:>5} chunks"
            f"  dim {rec.dim}  from index {rec.start_index}"
            f"  coeffs {rec.coeffs}"
        )
    e_counts = [len(v) for v in meta.eci.axial_vectors]
    lines.append(f"  axial records : E = {e_counts} "
                 f"(total {meta.eci.num_records})")
    return "\n".join(lines)


def verify(path: str | pathlib.Path,
           check_addresses: bool = True) -> list[str]:
    """Integrity checks; returns human-readable problems (empty = OK)."""
    problems: list[str] = []
    try:
        meta, _kind, present = load_meta(path)
    except DRXError as exc:
        return [f"unreadable meta-data: {exc}"]
    try:
        meta.check_consistent()
    except DRXError as exc:
        problems.append(f"inconsistent meta-data: {exc}")
    if present > meta.data_nbytes:
        # single-file tail meta legitimately extends past the chunk area
        pass
    if meta.codec != "none" and meta.chunk_slots is not None:
        # compressed layout: slots must be disjoint, inside the extent,
        # and clear of the reserved span (single-file tail meta blob)
        doc = meta.chunk_slots
        try:
            end = int(doc["end"])
            spans = [(int(s[1]), int(s[1]) + int(s[3]), int(s[0]))
                     for s in doc["slots"] if int(s[3]) > 0]
            reserved = doc.get("reserved")
            if reserved is not None:
                spans.append((int(reserved[0]),
                              int(reserved[0]) + int(reserved[1]), -1))
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            problems.append(f"corrupt chunk slot table: {exc}")
        else:
            spans.sort()
            for (a0, a1, ai), (b0, _b1, bi) in zip(spans, spans[1:]):
                if b0 < a1:
                    problems.append(
                        f"overlapping chunk slots at chunks {ai}/{bi} "
                        f"(offsets {a0} and {b0})"
                    )
            if spans and spans[-1][1] > end:
                problems.append(
                    f"chunk slot past the physical extent "
                    f"({spans[-1][1]} > {end})"
                )
    if check_addresses and meta.num_chunks <= 1 << 16:
        grid = all_addresses(meta.eci)
        flat = sorted(grid.ravel().tolist())
        if flat != list(range(meta.num_chunks)):
            problems.append("addressing is not a bijection "
                            "(corrupt axial vectors)")
    if meta.chunk_elems <= 0:
        problems.append(f"degenerate chunk shape {meta.chunk_shape}")
    return problems
