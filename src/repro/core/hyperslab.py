"""Strided hyperslab selections over chunked arrays.

Self-describing chunked formats expose strided rectangular selections
(HDF5 calls them *hyperslabs*): ``(start, stride, count)`` per dimension
selects ``count`` elements ``stride`` apart beginning at ``start``.
DRX supports the same selection model on top of its chunk machinery:
the bounding box of the slab is covered chunk by chunk, and within each
chunk the lattice elements are picked with NumPy slicing — no
per-element Python loop.

A :class:`Hyperslab` is pure geometry; the I/O lives in the file
classes' ``read_slab``/``write_slab``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Sequence

from .errors import DRXIndexError

__all__ = ["Hyperslab"]


@dataclass(frozen=True)
class Hyperslab:
    """A strided selection: per-dimension ``(start, stride, count)``."""

    start: tuple[int, ...]
    stride: tuple[int, ...]
    count: tuple[int, ...]

    def __post_init__(self) -> None:
        if not (len(self.start) == len(self.stride) == len(self.count)):
            raise DRXIndexError("hyperslab field ranks differ")
        for s, st, c in zip(self.start, self.stride, self.count):
            if s < 0 or st < 1 or c < 1:
                raise DRXIndexError(
                    f"invalid hyperslab: start={self.start} "
                    f"stride={self.stride} count={self.count}"
                )

    @classmethod
    def build(cls, start: Sequence[int], stride: Sequence[int],
              count: Sequence[int]) -> "Hyperslab":
        return cls(tuple(int(x) for x in start),
                   tuple(int(x) for x in stride),
                   tuple(int(x) for x in count))

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.start)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the selected (dense) result array."""
        return self.count

    @property
    def nelems(self) -> int:
        return prod(self.count)

    def bounding_box(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Half-open element box enclosing every selected element."""
        lo = self.start
        hi = tuple(s + (c - 1) * st + 1
                   for s, st, c in zip(self.start, self.stride, self.count))
        return lo, hi

    def validate(self, bounds: Sequence[int]) -> None:
        _lo, hi = self.bounding_box()
        for h, n in zip(hi, bounds):
            if h > n:
                raise DRXIndexError(
                    f"hyperslab {self} exceeds bounds {tuple(bounds)}"
                )

    # ------------------------------------------------------------------
    def box_selector(self, box_lo: Sequence[int], box_hi: Sequence[int]
                     ) -> tuple[tuple[slice, ...], tuple[slice, ...]] | None:
        """Slices extracting this slab's lattice from a covering box.

        Given a box ``[box_lo, box_hi)`` (e.g. one chunk's clipped
        region), returns ``(box_slices, out_slices)`` such that
        ``out[out_slices] = box[box_slices]`` moves exactly the selected
        lattice points inside the box — or ``None`` when the box contains
        no lattice point.  Strided NumPy slices, no element loops.
        """
        box_slices = []
        out_slices = []
        for s, st, c, lo, hi in zip(self.start, self.stride, self.count,
                                    box_lo, box_hi):
            # first lattice index >= lo
            if lo <= s:
                first_i = 0
            else:
                first_i = -(-(lo - s) // st)
            last_i = (hi - 1 - s) // st       # last lattice index < hi
            if first_i >= c or last_i < first_i:
                return None
            last_i = min(last_i, c - 1)
            first = s + first_i * st
            box_slices.append(slice(first - lo,
                                    (s + last_i * st) - lo + 1, st))
            out_slices.append(slice(first_i, last_i + 1))
        return tuple(box_slices), tuple(out_slices)
