"""The extendible-array growth engine: bounds, segments and axial vectors.

:class:`ExtendibleChunkIndex` is the heart of the reproduction.  It models
the *chunk-level* address space of a dense extendible k-dimensional array:
every chunk has a k-dimensional chunk index ``<I_0, ..., I_{k-1}>`` and a
linear address ``q*`` in the (conceptually append-only) array file.  The
class maintains the axial vectors of the paper's section III-B, implements
the ``extend`` operation (adjoining a hyper-slab *segment* of chunks), and
exposes the mapping function ``F*`` and its inverse ``F*^-1``.

Key properties (all verified by the test suite, several by property-based
tests):

* **bijectivity** — at any instant, ``address`` is a bijection between the
  chunk-index box ``prod [0, N*_j)`` and the linear range ``[0, M*)`` with
  ``M* = prod N*_j``; there are no holes and no collisions.  This is what
  distinguishes the axial-vector scheme from Z-order (exponential padded
  growth) and the symmetric shell order (cyclic-only growth) of Fig. 2.
* **stability** — extending any dimension never changes the address of any
  previously allocated chunk, so the array file never needs reorganizing.
* **merge rule** — repeated extensions of the same dimension with no
  intervening extension of another dimension ("uninterrupted extensions")
  are described by a single axial record; the record count ``E_j`` equals
  the number of *interrupted* extension runs of dimension ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterable, Sequence

import numpy as np

from .axial import SENTINEL_ADDRESS, AxialRecord, AxialVector
from .errors import DRXExtendError, DRXFormatError, DRXIndexError

__all__ = ["Segment", "ExtendibleChunkIndex"]


@dataclass(frozen=True, slots=True)
class Segment:
    """A contiguous run of chunk addresses adjoined by one extension run.

    ``record`` is the axial record that governs addresses inside the
    segment.  ``n_chunks`` reflects merged (uninterrupted) extensions, so
    it can exceed the extent the record was first created with.
    """

    start_address: int
    n_chunks: int
    record: AxialRecord

    @property
    def end_address(self) -> int:
        """One past the last chunk address of the segment."""
        return self.start_address + self.n_chunks


class ExtendibleChunkIndex:
    """Chunk-level addressing of a dense extendible array.

    Parameters
    ----------
    initial_bounds:
        The chunk-level bounds of the initial allocation, one positive
        integer per dimension.  The initial box is laid out in row-major
        order (its record is attributed to the last dimension, matching
        Fig. 3b of the paper; all other dimensions receive sentinel
        records).

    Examples
    --------
    The 3-D worked example of the paper's Fig. 3::

        >>> eci = ExtendibleChunkIndex([4, 3, 1])
        >>> eci.extend(2); eci.extend(2)   # uninterrupted: one record
        >>> eci.extend(1)
        >>> eci.extend(0, 2)
        >>> eci.extend(2)
        >>> eci.address((4, 2, 2))
        56
        >>> eci.index(56)
        (4, 2, 2)
    """

    __slots__ = ("_bounds", "_axial", "_segments", "_last_extended_dim",
                 "_num_chunks", "_np_dirty", "_np_seg_starts",
                 "_np_seg_dims", "_np_seg_first", "_np_seg_coeffs",
                 "_generation")

    def __init__(self, initial_bounds: Sequence[int]) -> None:
        bounds = [int(b) for b in initial_bounds]
        if not bounds:
            raise DRXExtendError("array rank must be at least 1")
        if any(b < 1 for b in bounds):
            raise DRXExtendError(f"initial bounds must be >= 1, got {bounds}")
        k = len(bounds)
        self._bounds = bounds
        self._axial = [AxialVector(j) for j in range(k)]
        # Initial allocation: a row-major record with sentinels on every
        # other dimension (Fig. 3b).  Row-major coefficients coincide with
        # the extension coefficients of dimension 0 (the least-varying
        # dimension), so the initial record is attributed to dimension 0;
        # the stored numbers are exactly those of the paper's figure, and
        # the inverse decode can then uniformly peel the record's own
        # dimension first.
        initial = AxialRecord(
            dim=0, start_index=0, start_address=0,
            coeffs=tuple(_extension_coeffs(bounds, 0)), file_offset=0,
        )
        self._axial[0].append(initial)
        for j in range(1, k):
            self._axial[j].append(AxialRecord(
                dim=j, start_index=0, start_address=SENTINEL_ADDRESS,
                coeffs=(0,) * k, file_offset=0,
            ))
        self._num_chunks = prod(bounds)
        self._segments: list[Segment] = [
            Segment(0, self._num_chunks, initial)
        ]
        # None until the first extension: the initial row-major box can
        # never be merged into (appending along any dimension of a
        # multi-dimensional row-major box is not a contiguous append).
        self._last_extended_dim: int | None = None
        self._np_dirty = True
        self._np_seg_starts: np.ndarray | None = None
        self._np_seg_dims: np.ndarray | None = None
        self._np_seg_first: np.ndarray | None = None
        self._np_seg_coeffs: np.ndarray | None = None
        self._generation = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """Number of dimensions ``k`` (fixed; the paper's weak extendibility)."""
        return len(self._bounds)

    @property
    def bounds(self) -> tuple[int, ...]:
        """Current chunk-level bounds ``(N*_0, ..., N*_{k-1})``."""
        return tuple(self._bounds)

    @property
    def num_chunks(self) -> int:
        """Total chunks allocated, ``M* = prod(N*_j)``."""
        return self._num_chunks

    @property
    def num_records(self) -> int:
        """Total axial records ``E`` (sentinels included), as used in the
        paper's O(k + log E) complexity bound."""
        return sum(len(v) for v in self._axial)

    @property
    def axial_vectors(self) -> tuple[AxialVector, ...]:
        return tuple(self._axial)

    @property
    def segments(self) -> tuple[Segment, ...]:
        """Segments in increasing start-address (= creation) order."""
        return tuple(self._segments)

    @property
    def generation(self) -> int:
        """Monotone counter bumped by every :meth:`extend`.

        Replicated meta-data holders (DRX-MP processes) compare
        generations to detect a stale copy.
        """
        return self._generation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ExtendibleChunkIndex(bounds={self.bounds}, "
                f"chunks={self._num_chunks}, records={self.num_records})")

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def extend(self, dim: int, by: int = 1, merge: bool = True) -> Segment:
        """Extend dimension ``dim`` by ``by`` chunk indices.

        Adjoins a segment of ``by * prod(other bounds)`` chunks at the end
        of the linear address space and returns the (possibly merged)
        :class:`Segment` now covering it.  No previously assigned address
        changes.

        ``merge=False`` disables the paper's uninterrupted-extension merge
        rule, forcing one axial record per call even for repeated
        extensions of the same dimension.  Addresses are identical either
        way (the new record carries the same coefficients); only the
        record count ``E`` — and hence lookup cost — grows.  Exists for
        the A2 ablation benchmark.
        """
        k = self.rank
        if not 0 <= dim < k:
            raise DRXExtendError(f"dimension {dim} outside rank {k}")
        if by < 1:
            raise DRXExtendError(f"extension must be >= 1, got {by}")

        new_chunks = by * prod(b for j, b in enumerate(self._bounds) if j != dim)
        last = self._segments[-1]
        if merge and dim == self._last_extended_dim and last.record.dim == dim:
            # Uninterrupted extension: the existing record's coefficients
            # are still valid (no other bound changed), so merge.
            merged = Segment(last.start_address,
                             last.n_chunks + new_chunks, last.record)
            self._segments[-1] = merged
            segment = merged
        else:
            coeffs = _extension_coeffs(self._bounds, dim)
            record = AxialRecord(
                dim=dim,
                start_index=self._bounds[dim],
                start_address=self._num_chunks,
                coeffs=tuple(coeffs),
                file_offset=self._num_chunks,
            )
            self._axial[dim].append(record)
            segment = Segment(self._num_chunks, new_chunks, record)
            self._segments.append(segment)

        self._bounds[dim] += by
        self._num_chunks += new_chunks
        self._last_extended_dim = dim
        self._np_dirty = True
        self._generation += 1
        return segment

    # ------------------------------------------------------------------
    # the mapping function F* and its inverse (scalar forms)
    # ------------------------------------------------------------------
    def address(self, index: Sequence[int]) -> int:
        """``F*``: linear chunk address of k-dimensional chunk ``index``.

        Follows the paper's algorithm: binary-search every axial vector
        for the candidate record, keep the one whose segment has the
        maximum start address, then evaluate Eq. (1).
        """
        k = self.rank
        if len(index) != k:
            raise DRXIndexError(
                f"index rank {len(index)} != array rank {k}"
            )
        best: AxialRecord | None = None
        for j in range(k):
            ij = index[j]
            if ij < 0 or ij >= self._bounds[j]:
                raise DRXIndexError(
                    f"chunk index {tuple(index)} outside bounds {self.bounds}"
                )
            rec = self._axial[j].search(ij)
            if best is None or rec.start_address > best.start_address:
                best = rec
        assert best is not None and not best.is_sentinel
        return best.address_of(index)

    def index(self, address: int) -> tuple[int, ...]:
        """``F*^-1``: k-dimensional chunk index of linear chunk ``address``.

        O(k + log E): one binary search over segment start addresses, then
        mixed-radix decoding with the governing record's coefficients.
        """
        if address < 0 or address >= self._num_chunks:
            raise DRXIndexError(
                f"address {address} outside [0, {self._num_chunks})"
            )
        lo, hi = 0, len(self._segments)
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if self._segments[mid].start_address <= address:
                lo = mid
            else:
                hi = mid
        return self._segments[lo].record.index_of(address, self.rank)

    # ------------------------------------------------------------------
    # vectorized mirrors used by repro.core.mapping / repro.core.inverse
    # ------------------------------------------------------------------
    def _rebuild_np(self) -> None:
        k = self.rank
        self._np_seg_starts = np.asarray(
            [s.start_address for s in self._segments], dtype=np.int64
        )
        self._np_seg_dims = np.asarray(
            [s.record.dim for s in self._segments], dtype=np.int64
        )
        self._np_seg_first = np.asarray(
            [s.record.start_index for s in self._segments], dtype=np.int64
        )
        self._np_seg_coeffs = np.asarray(
            [s.record.coeffs for s in self._segments], dtype=np.int64
        ).reshape(len(self._segments), k)
        self._np_dirty = False

    @property
    def np_segment_starts(self) -> np.ndarray:
        if self._np_dirty:
            self._rebuild_np()
        return self._np_seg_starts

    @property
    def np_segment_dims(self) -> np.ndarray:
        if self._np_dirty:
            self._rebuild_np()
        return self._np_seg_dims

    @property
    def np_segment_first_indices(self) -> np.ndarray:
        if self._np_dirty:
            self._rebuild_np()
        return self._np_seg_first

    @property
    def np_segment_coeffs(self) -> np.ndarray:
        if self._np_dirty:
            self._rebuild_np()
        return self._np_seg_coeffs

    # ------------------------------------------------------------------
    # (de)serialization — the meta-data file stores exactly this
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "bounds": list(self._bounds),
            "last_extended_dim": self._last_extended_dim,
            "generation": self._generation,
            "axial_vectors": [v.to_dict() for v in self._axial],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ExtendibleChunkIndex":
        """Rebuild from serialized axial vectors.

        Segments are not stored: because the file is append-only they are
        fully determined by the non-sentinel records sorted by start
        address (each segment ends where the next begins; the last ends at
        ``prod(bounds)``).
        """
        try:
            bounds = [int(b) for b in d["bounds"]]
            vectors = [AxialVector.from_dict(v) for v in d["axial_vectors"]]
            raw_last = d["last_extended_dim"]
            last_dim = None if raw_last is None else int(raw_last)
            generation = int(d.get("generation", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise DRXFormatError(f"malformed extendible index: {d!r}") from exc
        if len(vectors) != len(bounds):
            raise DRXFormatError(
                f"{len(vectors)} axial vectors for rank {len(bounds)}"
            )
        obj = cls.__new__(cls)
        obj._bounds = bounds
        obj._axial = vectors
        for j, v in enumerate(vectors):
            if v.dim != j:
                raise DRXFormatError(
                    f"axial vector at slot {j} claims dimension {v.dim}"
                )
        obj._num_chunks = prod(bounds)
        records = sorted(
            (r for v in vectors for r in v if not r.is_sentinel),
            key=lambda r: r.start_address,
        )
        if not records or records[0].start_address != 0:
            raise DRXFormatError("missing initial allocation record")
        segments: list[Segment] = []
        for i, rec in enumerate(records):
            end = (records[i + 1].start_address if i + 1 < len(records)
                   else obj._num_chunks)
            if end <= rec.start_address:
                raise DRXFormatError(
                    f"segment at {rec.start_address} has non-positive extent"
                )
            segments.append(Segment(rec.start_address,
                                    end - rec.start_address, rec))
        obj._segments = segments
        obj._last_extended_dim = last_dim
        obj._generation = generation
        obj._np_dirty = True
        obj._np_seg_starts = None
        obj._np_seg_dims = None
        obj._np_seg_first = None
        obj._np_seg_coeffs = None
        return obj

    def copy(self) -> "ExtendibleChunkIndex":
        """An independent replica (DRX-MP replicates meta-data per node)."""
        return ExtendibleChunkIndex.from_dict(self.to_dict())


# ---------------------------------------------------------------------------
# coefficient helpers
# ---------------------------------------------------------------------------

def _row_major_coeffs(bounds: Sequence[int]) -> list[int]:
    """Conventional row-major coefficients ``C_j = prod_{r>j} N_r``."""
    k = len(bounds)
    coeffs = [1] * k
    for j in range(k - 2, -1, -1):
        coeffs[j] = coeffs[j + 1] * bounds[j + 1]
    return coeffs


def _extension_coeffs(bounds: Sequence[int], l: int) -> list[int]:
    """Coefficients stored when dimension ``l`` is extended (Eq. 1).

    ``C_l = prod_{j != l} N*_j`` and, for ``j != l``,
    ``C_j = prod_{r > j, r != l} N*_r`` — i.e. row-major over the other
    dimensions with ``l`` promoted to least-varying.
    """
    k = len(bounds)
    coeffs = [0] * k
    coeffs[l] = prod(b for j, b in enumerate(bounds) if j != l)
    acc = 1
    for j in range(k - 1, -1, -1):
        if j == l:
            continue
        coeffs[j] = acc
        acc *= bounds[j]
    return coeffs


def replay_history(initial_bounds: Sequence[int],
                   history: Iterable[tuple[int, int]]) -> ExtendibleChunkIndex:
    """Build an index by replaying a growth history.

    ``history`` is an iterable of ``(dim, by)`` extension steps.  Used by
    workload generators and property-based tests.
    """
    eci = ExtendibleChunkIndex(initial_bounds)
    for dim, by in history:
        eci.extend(dim, by)
    return eci
