"""Array-at-a-time chunk scatter/gather kernels.

The paper's read path recovers each arriving chunk's k-dimensional index
with ``F*⁻¹`` and assigns it "to the desired location in memory".  Done
one chunk at a time that assignment is a Python loop: a tuple of slices
is built per chunk and a tiny strided copy issued, so for thousands of
small chunks the interpreter — not the memory system — sets the pace.

This module replaces the loop with whole-batch NumPy operations.  The
key observation: the chunks touched by a rectilinear request form a
**dense chunk grid** (every chunk index in ``[g_lo, g_hi)`` appears
exactly once).  A dense grid scatters with three C-level operations,
independent of the number of chunks:

1. a fancy-index assignment placing every payload at its grid position
   of a scratch array viewed as ``(g0, c0, g1, c1, ...)`` interleaved
   grid/chunk axes;
2. nothing — the transpose is a stride trick, not a copy;
3. one sliced assignment moving the requested element box into the
   destination array (any memory order — NumPy handles the strides).

Gather runs the same dance backwards.  Requests whose chunk set is not
a dense grid (hyperslabs that skip chunks, degenerate plans) fall back
to a per-chunk loop over **vectorized** box arithmetic — the geometry
is still computed for the whole batch at once.

``DRX_VECTORIZE=0`` (or :func:`set_vectorized`) forces the per-chunk
fallback everywhere; the autotune macro-benchmark flips this switch to
measure the pure-CPU win of vectorization with no other confounder.
Both paths are bit-identical by construction and by regression test.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

__all__ = [
    "ScatterStats",
    "SCATTER_STATS",
    "vectorized_enabled",
    "set_vectorized",
    "chunk_boxes",
    "scatter_chunks",
    "gather_chunks",
    "full_chunk_mask",
]


_vectorized = os.environ.get("DRX_VECTORIZE", "1") not in ("0", "off", "")

#: Dense-grid fast path cutoff: chunk payloads at most this many bytes
#: go through the grid kernels.  Small chunks are interpreter-bound (the
#: per-chunk loop costs ~4 µs of Python per chunk vs. microseconds of
#: memmove) and batch 2-7x faster; large chunks are memmove-bound, where
#: the grid scratch's extra full copy costs more than the loop saves
#: (measured crossover ~8 KiB on the E2/E5 shapes).
_DENSE_CHUNK_CUTOFF = 4096


def vectorized_enabled() -> bool:
    """Whether the dense-grid fast paths are active (default on)."""
    return _vectorized


def set_vectorized(enabled: bool) -> bool:
    """Force the kernels on/off at runtime; returns the previous value.

    The autotune benchmark uses this to measure the vectorization win in
    isolation; tests use it to prove both paths bit-identical.
    """
    global _vectorized
    prev = _vectorized
    _vectorized = bool(enabled)
    return prev


@dataclass
class ScatterStats:
    """Counters for the scatter/gather kernels (process-wide)."""

    dense_ops: int = 0      #: batches served by the dense-grid fast path
    fallback_ops: int = 0   #: batches served by the per-chunk loop
    chunks_moved: int = 0   #: chunk payloads moved through either path
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  init=False, repr=False, compare=False)

    def note(self, dense: bool, nchunks: int) -> None:
        with self._lock:
            if dense:
                self.dense_ops += 1
            else:
                self.fallback_ops += 1
            self.chunks_moved += nchunks

    def snapshot(self) -> "ScatterStats":
        return replace(self)


#: Process-wide kernel counters (advisor input; asserted by tests).
SCATTER_STATS = ScatterStats()


def chunk_boxes(indices: np.ndarray, chunk_shape: Sequence[int],
                element_bounds: Sequence[int]
                ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`~repro.core.chunking.chunk_element_box`.

    Returns ``(lo, hi)`` as ``(n, k)`` int64 arrays: per chunk the
    half-open element box clipped to ``element_bounds``.
    """
    cs = np.asarray(chunk_shape, dtype=np.int64)
    lo = indices * cs
    hi = np.minimum(lo + cs, np.asarray(element_bounds, dtype=np.int64))
    return lo, hi


def full_chunk_mask(indices: np.ndarray, chunk_shape: Sequence[int],
                    element_bounds: Sequence[int],
                    box_lo: Sequence[int], box_hi: Sequence[int]
                    ) -> np.ndarray:
    """Boolean mask of chunks fully covered by ``[box_lo, box_hi)``.

    A chunk is *full* when its clipped element box lies entirely inside
    the request box — writing it needs no read-modify-write.
    """
    lo, hi = chunk_boxes(indices, chunk_shape, element_bounds)
    blo = np.asarray(box_lo, dtype=np.int64)
    bhi = np.asarray(box_hi, dtype=np.int64)
    return ((lo >= blo) & (hi <= bhi)).all(axis=1)


# ---------------------------------------------------------------------------
# dense-grid detection
# ---------------------------------------------------------------------------

def _grid_map(indices: np.ndarray):
    """``(g_lo, gshape, grid_coords)`` when ``indices`` is a dense grid.

    Dense: every chunk index of the bounding grid ``[g_lo, g_hi)``
    appears exactly once.  Returns ``None`` otherwise (the caller falls
    back to the per-chunk loop).
    """
    n = indices.shape[0]
    g_lo = indices.min(axis=0)
    gshape = indices.max(axis=0) + 1 - g_lo
    total = int(np.prod(gshape))
    if total != n:
        return None
    coords = (indices - g_lo).T
    gp = np.ravel_multi_index(tuple(coords), tuple(gshape))
    if np.bincount(gp, minlength=n).max() != 1:
        return None     # duplicates => some grid cell is missing too
    return g_lo, tuple(int(x) for x in gshape), tuple(coords)


def _grid_scratch(gshape: tuple[int, ...], chunk_shape: Sequence[int],
                  dtype) -> tuple[np.ndarray, np.ndarray]:
    """A scratch element array spanning the whole chunk grid, plus the
    interleaved ``(g0, c0, g1, c1, ...)`` view transposed to
    ``(g0, ..., gk-1, c0, ..., ck-1)`` — a stride trick, no copy."""
    k = len(gshape)
    elem_shape = tuple(g * c for g, c in zip(gshape, chunk_shape))
    tmp = np.empty(elem_shape, dtype=dtype)
    inter = tuple(x for gc in zip(gshape, chunk_shape) for x in gc)
    axes = tuple(range(0, 2 * k, 2)) + tuple(range(1, 2 * k, 2))
    return tmp, tmp.reshape(inter).transpose(axes)


def _grid_selectors(g_lo: np.ndarray, gshape: tuple[int, ...],
                    chunk_shape: Sequence[int],
                    element_bounds: Sequence[int],
                    origin: Sequence[int], box_shape: Sequence[int]):
    """Slices mapping the scratch grid onto the request box.

    Returns ``(sel_tmp, sel_box)`` — matching selections of the scratch
    array and of the request's in-memory array — or ``None`` when the
    intersection is empty.
    """
    k = len(gshape)
    sel_tmp = []
    sel_box = []
    for d in range(k):
        G = int(g_lo[d]) * chunk_shape[d]
        g_end = min(G + gshape[d] * chunk_shape[d], element_bounds[d])
        a = max(G, origin[d])
        b = min(g_end, origin[d] + box_shape[d])
        if a >= b:
            return None
        sel_tmp.append(slice(a - G, b - G))
        sel_box.append(slice(a - origin[d], b - origin[d]))
    return tuple(sel_tmp), tuple(sel_box)


# ---------------------------------------------------------------------------
# scatter (read side: file-order payloads -> in-memory box)
# ---------------------------------------------------------------------------

def scatter_chunks(staging: np.ndarray, indices: np.ndarray,
                   chunk_shape: Sequence[int],
                   element_bounds: Sequence[int],
                   out: np.ndarray, origin: Sequence[int]) -> None:
    """Scatter chunk payloads into ``out`` (element box at ``origin``).

    ``staging`` is ``(n, *chunk_shape)`` with ``staging[i]`` the payload
    of chunk ``indices[i]``; only the intersection of each chunk's
    clipped element box with ``[origin, origin + out.shape)`` is copied,
    so the same kernel serves zone reads (chunks inside the box) and
    arbitrary box reads (edge chunks sticking out of it).
    """
    n = indices.shape[0]
    if n == 0:
        return
    if _vectorized and n > 1 and staging[0].nbytes <= _DENSE_CHUNK_CUTOFF:
        grid = _grid_map(indices)
        if grid is not None:
            g_lo, gshape, coords = grid
            sel = _grid_selectors(g_lo, gshape, chunk_shape,
                                  element_bounds, origin, out.shape)
            if sel is None:
                return
            tmp, v = _grid_scratch(gshape, chunk_shape, staging.dtype)
            v[coords] = staging
            sel_tmp, sel_out = sel
            out[sel_out] = tmp[sel_tmp]
            SCATTER_STATS.note(True, n)
            return
    _loop_scatter(staging, indices, chunk_shape, element_bounds,
                  out, origin)
    SCATTER_STATS.note(False, n)


def _loop_scatter(staging, indices, chunk_shape, element_bounds,
                  out, origin) -> None:
    lo, hi = chunk_boxes(indices, chunk_shape, element_bounds)
    org = np.asarray(origin, dtype=np.int64)
    o_lo = np.maximum(lo, org)
    o_hi = np.minimum(hi, org + np.asarray(out.shape, dtype=np.int64))
    valid = (o_lo < o_hi).all(axis=1)
    src_lo = (o_lo - lo).tolist()
    src_hi = (o_hi - lo).tolist()
    dst_lo = (o_lo - org).tolist()
    dst_hi = (o_hi - org).tolist()
    for i in np.flatnonzero(valid).tolist():
        src = tuple(map(slice, src_lo[i], src_hi[i]))
        dst = tuple(map(slice, dst_lo[i], dst_hi[i]))
        out[dst] = staging[i][src]


# ---------------------------------------------------------------------------
# gather (write side: in-memory box -> file-order payloads)
# ---------------------------------------------------------------------------

def gather_chunks(indices: np.ndarray, chunk_shape: Sequence[int],
                  element_bounds: Sequence[int],
                  values: np.ndarray, origin: Sequence[int],
                  staging: np.ndarray | None = None,
                  dtype=None) -> np.ndarray:
    """Build chunk payloads from ``values`` (element box at ``origin``).

    With ``staging=None`` a zero-filled ``(n, *chunk_shape)`` array is
    allocated — pad regions (beyond the clipped box or outside
    ``values``) stay zero, matching the historical write path.  Passing
    an existing ``staging`` overlays ``values`` onto it instead (the
    read-modify-write of partially covered chunks keeps the bytes read
    from the file).
    """
    n = indices.shape[0]
    cs = tuple(chunk_shape)
    if staging is None:
        staging = np.zeros((n, *cs), dtype=dtype or values.dtype)
    if n == 0:
        return staging
    if _vectorized and n > 1 and staging[0].nbytes <= _DENSE_CHUNK_CUTOFF:
        grid = _grid_map(indices)
        if grid is not None:
            g_lo, gshape, coords = grid
            sel = _grid_selectors(g_lo, gshape, cs, element_bounds,
                                  origin, values.shape)
            if sel is not None:
                tmp, v = _grid_scratch(gshape, cs, staging.dtype)
                # seed the scratch grid with the existing payloads so
                # un-overlaid bytes (pads, RMW data) survive the round
                # trip bit-identically
                v[coords] = staging
                sel_tmp, sel_val = sel
                tmp[sel_tmp] = values[sel_val]
                staging[...] = v[coords]
                SCATTER_STATS.note(True, n)
                return staging
    _loop_gather(staging, indices, cs, element_bounds, values, origin)
    SCATTER_STATS.note(False, n)
    return staging


def _loop_gather(staging, indices, chunk_shape, element_bounds,
                 values, origin) -> None:
    lo, hi = chunk_boxes(indices, chunk_shape, element_bounds)
    org = np.asarray(origin, dtype=np.int64)
    o_lo = np.maximum(lo, org)
    o_hi = np.minimum(hi, org + np.asarray(values.shape, dtype=np.int64))
    valid = (o_lo < o_hi).all(axis=1)
    dst_lo = (o_lo - lo).tolist()
    dst_hi = (o_hi - lo).tolist()
    src_lo = (o_lo - org).tolist()
    src_hi = (o_hi - org).tolist()
    for i in np.flatnonzero(valid).tolist():
        dst = tuple(map(slice, dst_lo[i], dst_hi[i]))
        src = tuple(map(slice, src_lo[i], src_hi[i]))
        staging[i][dst] = values[src]
