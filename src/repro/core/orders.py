"""The allocation orders of the paper's Fig. 2, as comparable objects.

Fig. 2 contrasts four ways of assigning linear addresses to the cells
(chunks) of a growing 2-D grid:

(a) **row-major sequence order** — the conventional C-language mapping;
    extendible in the first dimension only, anything else reorganizes.
(b) **Z (Morton) sequence order** — a space-filling curve; extendible,
    but growth happens by doubling in a cyclic order of the dimensions,
    so the allocated address space is the bounding power-of-two box.
(c) **symmetric linear shell sequence order** — linear growth, but
    expansions must cycle through the dimensions; growing one dimension
    ahead of the others leaves allocated-but-unused addresses (the
    allocated space is the bounding *cube*).
(d) **arbitrary linear shell sequence order** — the axial-vector scheme
    of the paper: any dimension, any order, no waste, no reorganization.

Each class implements the same tiny interface (``address``, ``index``,
``allocated_cells``) so the FIG2 test/benchmark can sweep them uniformly.
``allocated_cells(bounds)`` reports the size of the linear address space
the scheme must reserve to hold a grid of the given bounds — the waste
metric that motivates the paper's choice of (d).
"""

from __future__ import annotations

from math import isqrt, prod
from typing import Sequence

from .errors import DRXIndexError
from .extendible import ExtendibleChunkIndex

__all__ = [
    "RowMajorOrder",
    "ZOrder",
    "SymmetricShellOrder",
    "AxialOrder",
    "next_pow2",
]


def next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (n >= 1)."""
    return 1 << (n - 1).bit_length()


class RowMajorOrder:
    """Fig. 2a — conventional row-major (C order) addressing.

    The bounds of the trailing ``k-1`` dimensions are baked into the
    coefficients, so only dimension 0 can grow by appending; growing any
    other dimension changes every coefficient and therefore every address
    (a full-file reorganization, measured by experiment E1).
    """

    name = "row-major"
    extendible_dims = "first dimension only"

    def __init__(self, bounds: Sequence[int]) -> None:
        self.bounds = tuple(int(b) for b in bounds)
        if any(b < 1 for b in self.bounds):
            raise DRXIndexError(f"bounds must be >= 1, got {self.bounds}")
        k = len(self.bounds)
        self._coeffs = [1] * k
        for j in range(k - 2, -1, -1):
            self._coeffs[j] = self._coeffs[j + 1] * self.bounds[j + 1]

    def address(self, index: Sequence[int]) -> int:
        self._check(index)
        return sum(i * c for i, c in zip(index, self._coeffs))

    def index(self, address: int) -> tuple[int, ...]:
        if not 0 <= address < self.allocated_cells(self.bounds):
            raise DRXIndexError(f"address {address} out of range")
        out = []
        for c in self._coeffs:
            i, address = divmod(address, c)
            out.append(i)
        return tuple(out)

    def extend(self, dim: int, by: int = 1) -> None:
        """Grow dimension 0 in place; any other dimension re-coefficients
        the whole mapping (the caller sees every address change)."""
        bounds = list(self.bounds)
        bounds[dim] += by
        self.__init__(bounds)

    @staticmethod
    def allocated_cells(bounds: Sequence[int]) -> int:
        return prod(bounds)

    def _check(self, index: Sequence[int]) -> None:
        if len(index) != len(self.bounds):
            raise DRXIndexError("rank mismatch")
        for i, b in zip(index, self.bounds):
            if not 0 <= i < b:
                raise DRXIndexError(
                    f"index {tuple(index)} outside bounds {self.bounds}"
                )


class ZOrder:
    """Fig. 2b — Z (Morton) sequence order by bit interleaving.

    Addresses exist for the whole non-negative orthant, so the grid can
    always grow; but the address space consumed by a ``bounds`` grid is
    the bounding power-of-two box (growth "by doubling its size and only
    in a cyclic order of its dimensions").
    """

    name = "z-order"
    extendible_dims = "all (by doubling, cyclic)"

    def __init__(self, rank: int) -> None:
        if rank < 1:
            raise DRXIndexError("rank must be >= 1")
        self.rank = rank

    def address(self, index: Sequence[int]) -> int:
        if len(index) != self.rank:
            raise DRXIndexError("rank mismatch")
        if any(i < 0 for i in index):
            raise DRXIndexError(f"negative index {tuple(index)}")
        out = 0
        nbits = max((int(i).bit_length() for i in index), default=1) or 1
        for bit in range(nbits - 1, -1, -1):
            for i in index:
                out = (out << 1) | ((int(i) >> bit) & 1)
        return out

    def index(self, address: int) -> tuple[int, ...]:
        if address < 0:
            raise DRXIndexError(f"negative address {address}")
        k = self.rank
        coords = [0] * k
        bit = 0
        a = int(address)
        # Deinterleave: bits of the address round-robin the dimensions,
        # least significant bit belongs to the last dimension.
        while a:
            for j in range(k - 1, -1, -1):
                coords[j] |= (a & 1) << bit
                a >>= 1
                if not a and j == 0:
                    break
            bit += 1
        return tuple(coords)

    def allocated_cells(self, bounds: Sequence[int]) -> int:
        side = max(next_pow2(b) for b in bounds)
        return side ** len(tuple(bounds))


class SymmetricShellOrder:
    """Fig. 2c — symmetric linear shell sequence order.

    Cells are numbered shell by shell, shell ``s`` holding the cells with
    ``max(index) == s``; shell ``s`` starts at address ``s**k``.  Growth
    is linear but must cycle the dimensions symmetrically: holding bounds
    ``(N_0, ..)``, the allocated address space is ``max(N_j)**k`` — the
    bounding cube — so asymmetric growth assigns "chunk locations ...
    but unused".

    Within a shell, cells are ordered row-major over the enclosing box
    (a deterministic convention; the paper's figure is equivalent up to
    relabeling within shells, which affects no measured property).
    """

    name = "symmetric-shell"
    extendible_dims = "all (cyclic/symmetric)"

    def __init__(self, rank: int) -> None:
        if rank < 1:
            raise DRXIndexError("rank must be >= 1")
        self.rank = rank

    # -- helpers ------------------------------------------------------
    @staticmethod
    def _rm_rank_in_box(index: Sequence[int], side: int) -> int:
        """Row-major linear position of ``index`` in the ``side**k`` box."""
        out = 0
        for i in index:
            out = out * side + i
        return out

    @staticmethod
    def _count_smaller_in_subbox(index: Sequence[int], side: int,
                                 sub: int) -> int:
        """Cells ``J`` with all ``J_j < sub`` preceding ``index`` in the
        row-major order of the ``side**k`` box."""
        k = len(index)
        total = 0
        prefix_ok = True
        for j, i in enumerate(index):
            if prefix_ok:
                total += min(i, sub) * sub ** (k - 1 - j)
            if i >= sub:
                prefix_ok = False
        return total

    # -- interface ----------------------------------------------------
    def address(self, index: Sequence[int]) -> int:
        if len(index) != self.rank:
            raise DRXIndexError("rank mismatch")
        if any(i < 0 for i in index):
            raise DRXIndexError(f"negative index {tuple(index)}")
        s = max(index)
        k = self.rank
        if k == 2:
            i, j = index
            return s * s + (i if i < s else s + j)
        before = self._rm_rank_in_box(index, s + 1)
        inner = self._count_smaller_in_subbox(index, s + 1, s)
        return s ** k + (before - inner)

    def index(self, address: int) -> tuple[int, ...]:
        if address < 0:
            raise DRXIndexError(f"negative address {address}")
        k = self.rank
        if k == 2:
            s = isqrt(address)
            r = address - s * s
            return (r, s) if r < s else (s, r - s)
        # generic: find the shell, then scan it (shells are small compared
        # with the box; this path is exercised by tests, not hot loops).
        s = 0
        while (s + 1) ** k <= address:
            s += 1
        target = address - s ** k
        seen = 0
        for cell in _iter_box_row_major(s + 1, k):
            if max(cell) == s:
                if seen == target:
                    return cell
                seen += 1
        raise DRXIndexError(f"address {address} beyond shell {s}")

    def allocated_cells(self, bounds: Sequence[int]) -> int:
        return max(bounds) ** len(tuple(bounds))


def _iter_box_row_major(side: int, k: int):
    """Row-major iteration of the ``side**k`` box (generic-k shell scan)."""
    idx = [0] * k
    while True:
        yield tuple(idx)
        j = k - 1
        while j >= 0:
            idx[j] += 1
            if idx[j] < side:
                break
            idx[j] = 0
            j -= 1
        if j < 0:
            return


class AxialOrder:
    """Fig. 2d — the paper's arbitrary linear shell order (axial vectors).

    A thin adapter giving :class:`ExtendibleChunkIndex` the same interface
    as the other orders so the FIG2 comparison can treat all four
    uniformly.  ``allocated_cells(bounds) == prod(bounds)`` — zero waste —
    and any dimension extends in any sequence without reorganization.
    """

    name = "axial"
    extendible_dims = "all (arbitrary order, no waste)"

    def __init__(self, initial_bounds: Sequence[int]) -> None:
        self.eci = ExtendibleChunkIndex(initial_bounds)

    def address(self, index: Sequence[int]) -> int:
        return self.eci.address(index)

    def index(self, address: int) -> tuple[int, ...]:
        return self.eci.index(address)

    def extend(self, dim: int, by: int = 1) -> None:
        self.eci.extend(dim, by)

    @property
    def bounds(self) -> tuple[int, ...]:
        return self.eci.bounds

    @staticmethod
    def allocated_cells(bounds: Sequence[int]) -> int:
        return prod(bounds)
