"""Exception hierarchy for the DRX / DRX-MP reproduction.

All library-raised errors derive from :class:`DRXError` so applications can
catch one base class.  The hierarchy mirrors the error codes the paper's C
API returns ("Some functions may return error codes that are defined in the
context of the extendible array file environment", section IV-C) but maps
them onto idiomatic Python exceptions.
"""

from __future__ import annotations

__all__ = [
    "DRXError",
    "DRXIndexError",
    "DRXExtendError",
    "DRXFileError",
    "DRXFileExistsError",
    "DRXFileNotFoundError",
    "DRXFormatError",
    "DRXClosedError",
    "DRXTypeError",
    "DRXDistributionError",
    "ChecksumError",
    "CrashError",
    "MPIError",
    "MPIAbort",
    "MPICommError",
    "MPIDatatypeError",
    "MPIFileError",
    "MPIWinError",
    "PFSError",
    "ServerDownError",
    "DeadlineError",
    "ServeError",
    "RetryLater",
]


class DRXError(Exception):
    """Base class of every error raised by the ``repro`` library."""


class DRXIndexError(DRXError, IndexError):
    """A k-dimensional or linear index is outside the array's current bounds."""


class DRXExtendError(DRXError, ValueError):
    """An invalid extension request (non-positive growth, bad dimension, ...)."""


class DRXFileError(DRXError, OSError):
    """Base class for array-file level failures."""


class DRXFileExistsError(DRXFileError):
    """Creation requested for an array file that already exists."""


class DRXFileNotFoundError(DRXFileError):
    """Open requested for an array file that does not exist.

    The paper: "This function opens an extendible array file.  The file
    must exist otherwise it returns an error."
    """


class DRXFormatError(DRXFileError):
    """The ``.xmd`` meta-data or ``.xta`` data file content is malformed."""


class DRXClosedError(DRXError, ValueError):
    """Operation attempted through a handle that has been closed."""


class DRXTypeError(DRXError, TypeError):
    """Unsupported element data type.

    The paper restricts elements to the basic types accessible through
    MPI-2 RMA: integer, double and complex.
    """


class DRXDistributionError(DRXError, ValueError):
    """An invalid zone partitioning / data distribution request."""


class ChecksumError(DRXFormatError):
    """A chunk's stored CRC32 does not match the bytes read back.

    Raised on pool fault-in, streamed reads and ``scrub()`` when per-chunk
    checksums are enabled — the data was torn or corrupted at rest.
    """


class CrashError(DRXError):
    """A simulated process crash injected at a named crash point.

    Raised by the fault-injection machinery (:mod:`repro.drx.resilience`)
    to model the process dying at an arbitrary instant: nothing after the
    crash point executes, and tests then reopen the on-disk state.  Never
    classified as transient — retry layers always propagate it.
    """

    transient = False


# ---------------------------------------------------------------------------
# MPI substrate errors
# ---------------------------------------------------------------------------


class MPIError(DRXError, RuntimeError):
    """Base class of errors raised by the in-process MPI-2 substrate."""


class MPIAbort(MPIError):
    """Raised in every rank when one rank calls ``comm.Abort()``."""


class MPICommError(MPIError):
    """Invalid communicator usage (bad rank, mismatched collective, ...)."""


class MPIDatatypeError(MPIError):
    """Invalid derived-datatype construction or use of an uncommitted type."""


class MPIFileError(MPIError):
    """MPI-IO failure (bad view, access past EOF in read-only mode, ...)."""


class MPIWinError(MPIError):
    """RMA failure (access outside an epoch, out-of-range target, ...)."""


# ---------------------------------------------------------------------------
# Parallel file system substrate errors
# ---------------------------------------------------------------------------


class DeadlineError(DRXError, TimeoutError):
    """A deadline expired (or its cancellation scope was cancelled).

    Raised by :class:`repro.core.watchdog.Deadline` /
    :class:`~repro.core.watchdog.CancelScope` checkpoints: the MPI
    watchdog's per-run limit and the serve daemon's per-request
    deadlines both surface through this type.  Never transient — the
    budget is spent; whether to retry with a fresh budget is the
    caller's decision.
    """

    transient = False


# ---------------------------------------------------------------------------
# Array service (drx-serve) errors
# ---------------------------------------------------------------------------


class ServeError(DRXError):
    """A failure transported over the drx-serve wire protocol.

    The daemon serializes the server-side exception as ``(kind,
    message, transient)``; the client stub re-raises it as this type so
    its retry loop can consult the same
    :func:`repro.drx.resilience.is_transient` classification the
    storage stack uses (the explicit ``transient`` attribute wins).
    """

    def __init__(self, message: str, kind: str = "ServeError",
                 transient: bool = False) -> None:
        super().__init__(message)
        self.kind = kind
        self.transient = bool(transient)


class RetryLater(ServeError):
    """Backpressure: the daemon refused admission instead of queueing
    unboundedly.  Always transient — the client stub backs off and
    re-issues the request."""

    def __init__(self, reason: str) -> None:
        super().__init__(f"server busy: {reason}", kind="RetryLater",
                         transient=True)
        self.reason = reason


class PFSError(DRXError, OSError):
    """Failure inside the simulated parallel file system."""


class ServerDownError(PFSError):
    """An operation was routed to an I/O server that is down.

    Raised by :class:`~repro.pfs.server.IOServer` when a request reaches
    a killed server, and by :class:`~repro.pfs.pfile.PFSFile` when every
    replica of a stripe is unreachable.  Unlike generic
    :class:`PFSError`\\ s it is *not* transient: the replicated read
    path has already exhausted failover by the time it escapes, so retry
    layers surface it instead of spinning.
    """

    transient = False
