"""The inverse mapping function ``F*^-1`` — scalar and vectorized forms.

Given the linear address of a chunk in the array file, recover its
k-dimensional chunk index.  The paper (section III-C) uses this when
sequentially scanning a region of the file: chunks arrive in increasing
linear-address order, and each one's k-dimensional index (hence its
destination in the in-memory sub-array) is computed on the fly — this is
what makes read-time transposition possible without out-of-core passes.

Complexity O(k + log E): one binary search over segment start addresses
(the segment list is the flattened, address-sorted view of all axial
records), then mixed-radix decoding with the governing record's stored
coefficients.
"""

from __future__ import annotations

import numpy as np

from .errors import DRXIndexError
from .extendible import ExtendibleChunkIndex

__all__ = ["f_star_inv", "f_star_inv_many"]


def f_star_inv(eci: ExtendibleChunkIndex, address: int) -> tuple[int, ...]:
    """Scalar ``F*^-1``: k-dimensional chunk index of one linear address.

    Thin alias of :meth:`ExtendibleChunkIndex.index`, provided so the
    paper's function name appears in the public API.
    """
    return eci.index(address)


def f_star_inv_many(eci: ExtendibleChunkIndex,
                    addresses: np.ndarray) -> np.ndarray:
    """Vectorized ``F*^-1`` over a batch of linear chunk addresses.

    Parameters
    ----------
    eci:
        The extendible chunk index holding the segment table.
    addresses:
        ``(n,)`` integer array of linear chunk addresses.

    Returns
    -------
    ``(n, k)`` int64 array; row ``i`` is the chunk index of
    ``addresses[i]``.
    """
    q = np.ascontiguousarray(addresses, dtype=np.int64).reshape(-1)
    n = q.shape[0]
    k = eci.rank
    if n == 0:
        return np.empty((0, k), dtype=np.int64)
    if np.any(q < 0) or np.any(q >= eci.num_chunks):
        bad = int(q[(q < 0) | (q >= eci.num_chunks)][0])
        raise DRXIndexError(
            f"address {bad} outside [0, {eci.num_chunks})"
        )

    seg_starts = eci.np_segment_starts
    pos = np.searchsorted(seg_starts, q, side="right") - 1
    dims = eci.np_segment_dims[pos]                       # (n,)
    first = eci.np_segment_first_indices[pos]             # (n,)
    coeffs = eci.np_segment_coeffs[pos]                   # (n, k)
    offset = q - seg_starts[pos]

    out = np.empty((n, k), dtype=np.int64)
    # Peel the extension dimension (least varying inside its segment).
    c_l = np.take_along_axis(coeffs, dims[:, None], axis=1)[:, 0]
    i_l = first + offset // c_l
    rem = offset % c_l
    # Remaining dimensions decode in increasing j (row-major) order.
    for j in range(k):
        is_l = dims == j
        c_j = coeffs[:, j]
        # Avoid dividing by the l-coefficient twice; where j is the
        # extension dimension the value is already known.
        safe = np.where(is_l, 1, c_j)
        out[:, j] = np.where(is_l, i_l, rem // safe)
        rem = np.where(is_l, rem, rem % safe)
    return out
