"""Axial vectors: the per-dimension expansion history of an extendible array.

The paper (section III-B) stores, for every dimension ``l`` of a
k-dimensional extendible array, one *axial vector* |Gamma_l| of expansion
records.  A record is written whenever dimension ``l`` is extended after an
intervening extension of some *other* dimension (an "interrupted"
extension); consecutive extensions of the same dimension merge into a
single record ("uninterrupted" extensions).

Each record captures everything needed to compute linear chunk addresses
inside the hyper-slab *segment* that the extension adjoined:

``start_index``
    ``N*_l`` — the first chunk index along ``l`` covered by the segment.
``start_address``
    ``M*_l`` — the linear chunk address of the segment's first chunk (the
    total number of chunks that existed when the segment was adjoined).
    The sentinel records described below use ``-1`` here.
``coeffs``
    ``C[k]`` — the multiplying coefficients.  For the extension dimension
    ``l`` (the least-varying dimension of the segment) ``coeffs[l]`` is the
    product of the bounds of every *other* dimension at extension time;
    for ``j != l`` it is the row-major coefficient over the remaining
    dimensions, ``prod(N*_r for r > j if r != l)``.
``file_offset``
    ``S`` — the byte displacement in the ``.xta`` file where the segment
    begins.  The paper notes this field is redundant for append-only array
    files (it always equals ``start_address * chunk_bytes``); we keep it
    for fidelity with the meta-data layout of Fig. 3b.

Two special records appear at creation time, as in Fig. 3b of the paper:
the *initial allocation* is recorded with ``(N* = 0, M* = 0, C = row-major
coefficients)`` (so that addresses inside the initial box are plain
row-major), and every other dimension receives a *sentinel* record
``(N* = 0, M* = -1, C = 0)`` whose ``-1`` start address loses every
``max`` comparison during address computation.  We attribute the initial
record to dimension **0**: row-major coefficients are identical to the
extension coefficients of dimension 0 (the least-varying dimension), the
stored numbers match the paper's figure exactly, and the attribution
makes the inverse decode uniform — every record's own dimension is the
least-varying dimension of its segment and is peeled first.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .errors import DRXFormatError, DRXIndexError

__all__ = ["AxialRecord", "AxialVector", "SENTINEL_ADDRESS"]

#: ``start_address`` of the sentinel record placed in the axial vectors of
#: dimensions 0..k-2 at creation time (Fig. 3b shows ``0; -1; 0 0 0``).
SENTINEL_ADDRESS = -1


@dataclass(frozen=True, slots=True)
class AxialRecord:
    """One expansion record of an axial vector.

    Instances are immutable: once a segment has been adjoined its
    addressing parameters never change — this is precisely what makes the
    array extendible without reorganization.
    """

    dim: int
    """The dimension whose extension wrote this record."""

    start_index: int
    """``N*_l``: first chunk index along ``dim`` covered by the segment."""

    start_address: int
    """``M*``: linear chunk address of the segment's first chunk
    (:data:`SENTINEL_ADDRESS` for sentinel records)."""

    coeffs: tuple[int, ...]
    """``C[k]``: the stored multiplying coefficients."""

    file_offset: int = 0
    """``S``: byte displacement of the segment in the data file."""

    def __post_init__(self) -> None:
        if self.dim < 0 or self.dim >= len(self.coeffs):
            raise DRXFormatError(
                f"record dimension {self.dim} outside rank {len(self.coeffs)}"
            )
        if self.start_index < 0:
            raise DRXFormatError(f"negative start index {self.start_index}")

    @property
    def is_sentinel(self) -> bool:
        """True for the placeholder record of a never-extended dimension."""
        return self.start_address == SENTINEL_ADDRESS

    @property
    def rank(self) -> int:
        return len(self.coeffs)

    def address_of(self, index: Sequence[int]) -> int:
        """Linear chunk address of ``index`` assuming this record governs it.

        Implements the paper's Eq. (1)::

            q* = M* + (I_l - N*_l) * C_l + sum_{j != l} I_j * C_j

        The caller is responsible for having selected the governing record
        (the one with the maximum segment start address among the per-
        dimension binary-search results); this method just evaluates the
        arithmetic.
        """
        if self.is_sentinel:
            raise DRXIndexError("sentinel record cannot address any chunk")
        l = self.dim
        q = self.start_address + (index[l] - self.start_index) * self.coeffs[l]
        for j, ij in enumerate(index):
            if j != l:
                q += ij * self.coeffs[j]
        return q

    def index_of(self, address: int, rank: int) -> tuple[int, ...]:
        """Inverse of :meth:`address_of` within this record's segment.

        Decodes the k-dimensional chunk index from a linear ``address``
        that is known to fall inside the segment this record describes.
        The extension dimension is the least-varying one inside the
        segment, so it is peeled off first; the remaining offset is a
        mixed-radix row-major encoding of the other dimensions.
        """
        if self.is_sentinel:
            raise DRXIndexError("sentinel record holds no chunks")
        offset = address - self.start_address
        if offset < 0:
            raise DRXIndexError(
                f"address {address} precedes segment start {self.start_address}"
            )
        l = self.dim
        out = [0] * rank
        out[l] = self.start_index + offset // self.coeffs[l]
        rem = offset % self.coeffs[l]
        for j in range(rank):
            if j == l:
                continue
            cj = self.coeffs[j]
            if cj > 0:
                out[j], rem = divmod(rem, cj)
            # cj == 0 can only happen for a degenerate one-chunk segment
            # slice; the index component is then 0 which `out` already holds.
        return tuple(out)

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the ``.xmd`` meta-data file)."""
        return {
            "dim": self.dim,
            "start_index": self.start_index,
            "start_address": self.start_address,
            "coeffs": list(self.coeffs),
            "file_offset": self.file_offset,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AxialRecord":
        try:
            return cls(
                dim=int(d["dim"]),
                start_index=int(d["start_index"]),
                start_address=int(d["start_address"]),
                coeffs=tuple(int(c) for c in d["coeffs"]),
                file_offset=int(d.get("file_offset", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DRXFormatError(f"malformed axial record: {d!r}") from exc


class AxialVector:
    """The ordered sequence of expansion records of one dimension.

    Records are kept sorted by ``start_index`` (they are appended in
    strictly increasing ``start_index`` order as the dimension grows), so
    the governing-record lookup of the paper's ``bsearch`` is a plain
    rightmost-``<=`` binary search.

    The class additionally maintains NumPy mirrors of the record fields so
    the vectorized mapping functions (:mod:`repro.core.mapping`) can run
    ``np.searchsorted`` over thousands of indices at once without touching
    Python-level records.
    """

    __slots__ = ("dim", "_records", "_start_indices", "_np_start_indices",
                 "_np_start_addresses", "_np_coeffs", "_np_dirty")

    def __init__(self, dim: int, records: Sequence[AxialRecord] = ()) -> None:
        self.dim = dim
        self._records: list[AxialRecord] = []
        self._start_indices: list[int] = []
        self._np_dirty = True
        self._np_start_indices: np.ndarray | None = None
        self._np_start_addresses: np.ndarray | None = None
        self._np_coeffs: np.ndarray | None = None
        for rec in records:
            self.append(rec)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AxialRecord]:
        return iter(self._records)

    def __getitem__(self, i: int) -> AxialRecord:
        return self._records[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AxialVector(dim={self.dim}, records={self._records!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AxialVector):
            return NotImplemented
        return self.dim == other.dim and self._records == other._records

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, record: AxialRecord) -> None:
        """Append an expansion record.

        Records must arrive in strictly increasing ``start_index`` order
        except that the very first (sentinel or initial) record starts at
        index 0.
        """
        if record.dim != self.dim:
            raise DRXFormatError(
                f"record for dimension {record.dim} appended to axial "
                f"vector of dimension {self.dim}"
            )
        if self._records and record.start_index <= self._start_indices[-1]:
            raise DRXFormatError(
                f"axial records out of order: start index "
                f"{record.start_index} after {self._start_indices[-1]}"
            )
        self._records.append(record)
        self._start_indices.append(record.start_index)
        self._np_dirty = True

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, index: int) -> AxialRecord:
        """The paper's modified binary search.

        Returns the record with the *highest* ``start_index`` that is
        ``<= index`` — i.e. the candidate expansion record of this
        dimension for a chunk whose component along this dimension is
        ``index``.
        """
        if index < 0:
            raise DRXIndexError(f"negative chunk index {index}")
        pos = bisect_right(self._start_indices, index) - 1
        if pos < 0:
            raise DRXIndexError(
                f"no axial record covers index {index} on dimension {self.dim}"
            )
        return self._records[pos]

    # ------------------------------------------------------------------
    # vectorized mirrors
    # ------------------------------------------------------------------
    def _rebuild_np(self) -> None:
        rank = self._records[0].rank if self._records else 0
        self._np_start_indices = np.asarray(self._start_indices, dtype=np.int64)
        self._np_start_addresses = np.asarray(
            [r.start_address for r in self._records], dtype=np.int64
        )
        self._np_coeffs = np.asarray(
            [r.coeffs for r in self._records], dtype=np.int64
        ).reshape(len(self._records), rank)
        self._np_dirty = False

    @property
    def np_start_indices(self) -> np.ndarray:
        """``(E,)`` int64 array of record start indices (sorted ascending)."""
        if self._np_dirty:
            self._rebuild_np()
        return self._np_start_indices

    @property
    def np_start_addresses(self) -> np.ndarray:
        """``(E,)`` int64 array of segment start addresses."""
        if self._np_dirty:
            self._rebuild_np()
        return self._np_start_addresses

    @property
    def np_coeffs(self) -> np.ndarray:
        """``(E, k)`` int64 array of stored multiplying coefficients."""
        if self._np_dirty:
            self._rebuild_np()
        return self._np_coeffs

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"dim": self.dim, "records": [r.to_dict() for r in self._records]}

    @classmethod
    def from_dict(cls, d: dict) -> "AxialVector":
        try:
            dim = int(d["dim"])
            records = [AxialRecord.from_dict(r) for r in d["records"]]
        except (KeyError, TypeError) as exc:
            raise DRXFormatError(f"malformed axial vector: {d!r}") from exc
        return cls(dim, records)
