"""Shared deadline machinery: one monitor thread, many timed scopes.

This module grew out of the ``DRX_MPI_TIMEOUT`` deadlock watchdog of
:mod:`repro.mpi.runner`, generalized so the serve daemon
(:mod:`repro.serve`) can drive per-request deadlines through the *same*
timer implementation instead of a second one.  Three pieces:

* :class:`Deadline` — an absolute expiry instant on the monotonic
  clock.  ``check()`` raises :class:`~repro.core.errors.DeadlineError`
  once the instant passes; ``remaining()`` feeds socket timeouts and
  condition waits.

* :class:`CancelScope` — a cancellable deadline.  Long-running work
  calls ``scope.check()`` at its checkpoints (lock waits, store
  operations, simulated computation); anyone holding the scope may
  ``cancel()`` it asynchronously, which makes the next checkpoint
  raise.  This is how a daemon request is cancelled *mid-flight* when
  its deadline fires: the watchdog callback cancels the scope, and the
  worker thread aborts at its next checkpoint instead of running to
  completion on a request nobody is waiting for.

* :class:`Watchdog` — a single daemon thread firing callbacks at
  scheduled instants.  The MPI runner schedules one entry per
  ``mpiexec`` world (callback: snapshot the blocked collectives, abort
  the world); the serve daemon schedules one entry per admitted request
  (callback: cancel the request's scope).  Entries are O(log n) to
  schedule and cancel; a fired or cancelled entry costs nothing.

All times are ``time.monotonic()`` — wall-clock jumps must not fire (or
starve) a watchdog.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Callable

from .errors import DeadlineError

__all__ = [
    "Deadline",
    "CancelScope",
    "Watchdog",
    "WatchdogStats",
    "default_watchdog",
    "reset_default_watchdog",
]


class Deadline:
    """An absolute expiry instant (``None`` seconds = never expires)."""

    __slots__ = ("expires_at",)

    def __init__(self, seconds: float | None = None, *,
                 at: float | None = None) -> None:
        if at is not None:
            self.expires_at: float | None = float(at)
        elif seconds is None:
            self.expires_at = None
        else:
            self.expires_at = time.monotonic() + float(seconds)

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0.0), or ``None`` for no deadline."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return (self.expires_at is not None
                and time.monotonic() >= self.expires_at)

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineError` if the instant has passed."""
        if self.expired:
            raise DeadlineError(f"deadline exceeded during {what}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rem = self.remaining()
        return f"Deadline(remaining={'inf' if rem is None else f'{rem:.3f}'})"


class CancelScope:
    """A deadline that can additionally be cancelled from outside.

    Work that honours the scope calls :meth:`check` at every checkpoint
    — before a store operation, inside a lock wait, between slices of
    simulated computation.  The first failing condition wins: an
    explicit :meth:`cancel` (its reason is reported) or the deadline.
    """

    def __init__(self, deadline: Deadline | None = None) -> None:
        self.deadline = deadline if deadline is not None else Deadline()
        self._cancelled = threading.Event()
        self.reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Make every subsequent :meth:`check` raise (idempotent; the
        first reason sticks)."""
        if self.reason is None:
            self.reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    @property
    def expired(self) -> bool:
        return self.cancelled or self.deadline.expired

    def remaining(self) -> float | None:
        return None if self.deadline.expires_at is None \
            else self.deadline.remaining()

    def check(self, what: str = "operation") -> None:
        if self._cancelled.is_set():
            raise DeadlineError(f"{self.reason or 'cancelled'} during {what}")
        self.deadline.check(what)


@dataclass
class WatchdogStats:
    """Lifetime counters of one :class:`Watchdog` (tests assert reuse)."""

    scheduled: int = 0     #: entries accepted
    fired: int = 0         #: callbacks actually invoked
    cancelled: int = 0     #: entries cancelled before firing
    callback_errors: int = 0   #: callbacks that raised (swallowed)


class Watchdog:
    """One monitor thread firing callbacks at scheduled monotonic times.

    The thread starts lazily on the first :meth:`schedule` and sleeps
    exactly until the earliest pending entry, so an idle watchdog costs
    nothing.  Callbacks run on the watchdog thread and must be brief
    and non-blocking (cancel a scope, snapshot state, signal an event);
    exceptions they raise are swallowed into
    :attr:`WatchdogStats.callback_errors` — a watchdog that dies takes
    every deadline in the process with it.
    """

    def __init__(self, name: str = "drx-watchdog") -> None:
        self.name = name
        self.stats = WatchdogStats()
        self._cond = threading.Condition()
        #: heap of (fire_at, handle); cancelled handles stay until due
        self._heap: list[tuple[float, int]] = []
        self._callbacks: dict[int, Callable[[], None]] = {}
        self._next_handle = 0
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> int:
        """Fire ``callback`` ``delay`` seconds from now; returns a
        handle for :meth:`cancel`."""
        fire_at = time.monotonic() + max(0.0, float(delay))
        with self._cond:
            handle = self._next_handle
            self._next_handle += 1
            heapq.heappush(self._heap, (fire_at, handle))
            self._callbacks[handle] = callback
            self.stats.scheduled += 1
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, name=self.name, daemon=True)
                self._thread.start()
            self._cond.notify()
        return handle

    def cancel(self, handle: int) -> None:
        """Prevent a scheduled entry from firing (idempotent; a handle
        that already fired is simply gone)."""
        with self._cond:
            if self._callbacks.pop(handle, None) is not None:
                self.stats.cancelled += 1
                self._cond.notify()

    def pending(self) -> int:
        """Entries scheduled but not yet fired or cancelled."""
        with self._cond:
            return len(self._callbacks)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._heap:
                    # idle: park until new work arrives (bounded so a
                    # missed notify cannot wedge the thread forever)
                    self._cond.wait(60.0)
                    continue
                fire_at, handle = self._heap[0]
                if handle not in self._callbacks:
                    heapq.heappop(self._heap)          # cancelled
                    continue
                wait = fire_at - time.monotonic()
                if wait > 0:
                    self._cond.wait(wait)
                    continue
                heapq.heappop(self._heap)
                callback = self._callbacks.pop(handle)
                self.stats.fired += 1
            try:
                callback()
            except Exception:   # noqa: BLE001 - watchdog must survive
                self.stats.callback_errors += 1


# ---------------------------------------------------------------------------
# process-wide default (shared by the MPI runner and the serve daemon)
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default: Watchdog | None = None


def default_watchdog() -> Watchdog:
    """The process-wide watchdog every timed subsystem shares."""
    global _default
    with _default_lock:
        if _default is None:
            _default = Watchdog()
        return _default


def reset_default_watchdog() -> None:
    """Forget the shared instance (tests asserting fresh counters)."""
    global _default
    with _default_lock:
        _default = None
