"""The mapping function ``F*`` — scalar and NumPy-vectorized forms.

The scalar form lives on :meth:`ExtendibleChunkIndex.address`; this module
adds the batched form used by the I/O layers.  Building an MPI-IO file
view for a zone of hundreds of chunks requires hundreds of address
computations; doing them one Python call at a time would dominate the
run time, so :func:`f_star_many` evaluates the whole batch with a handful
of ``np.searchsorted`` / gather operations (see the HPC guide: vectorize
loops, operate on whole arrays).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import DRXIndexError
from .extendible import ExtendibleChunkIndex

__all__ = ["f_star", "f_star_many", "all_addresses"]


def f_star(eci: ExtendibleChunkIndex, index: Sequence[int]) -> int:
    """Scalar ``F*``: linear chunk address of one k-dimensional index.

    Thin alias of :meth:`ExtendibleChunkIndex.address`, provided so the
    paper's function name appears in the public API.
    """
    return eci.address(index)


def f_star_many(eci: ExtendibleChunkIndex, indices: np.ndarray) -> np.ndarray:
    """Vectorized ``F*`` over a batch of chunk indices.

    Parameters
    ----------
    eci:
        The extendible chunk index holding the axial vectors.
    indices:
        ``(n, k)`` integer array of chunk indices (each row one index).

    Returns
    -------
    ``(n,)`` int64 array of linear chunk addresses.

    Raises
    ------
    DRXIndexError
        If any row is outside the current bounds.
    """
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    if indices.ndim == 1:
        indices = indices[None, :]
    n, k = indices.shape
    if k != eci.rank:
        raise DRXIndexError(f"index rank {k} != array rank {eci.rank}")
    if n == 0:
        return np.empty(0, dtype=np.int64)

    bounds = np.asarray(eci.bounds, dtype=np.int64)
    oob = ((indices < 0) | (indices >= bounds)).any(axis=1)
    if oob.any():
        bad = indices[oob.argmax()]
        raise DRXIndexError(
            f"chunk index {tuple(int(x) for x in bad)} outside bounds "
            f"{eci.bounds}"
        )

    # Per dimension: rightmost record with start_index <= I_j.
    cand_addr = np.empty((n, k), dtype=np.int64)
    cand_pos = np.empty((n, k), dtype=np.int64)
    for j, vec in enumerate(eci.axial_vectors):
        pos = np.searchsorted(vec.np_start_indices, indices[:, j],
                              side="right") - 1
        cand_pos[:, j] = pos
        cand_addr[:, j] = vec.np_start_addresses[pos]

    # Governing record = the candidate with the maximum segment start.
    gov = np.argmax(cand_addr, axis=1)

    out = np.empty(n, dtype=np.int64)
    for j, vec in enumerate(eci.axial_vectors):
        rows = np.nonzero(gov == j)[0]
        if rows.size == 0:
            continue
        pos = cand_pos[rows, j]
        coeffs = vec.np_coeffs[pos]                      # (m, k)
        start_addr = vec.np_start_addresses[pos]         # (m,)
        start_idx = vec.np_start_indices[pos]            # (m,)
        # q = M* - N*_l * C_l + sum_j I_j * C_j   (folding the l-term)
        out[rows] = (start_addr - start_idx * coeffs[:, j]
                     + np.einsum("ij,ij->i", indices[rows], coeffs))
    return out


def all_addresses(eci: ExtendibleChunkIndex) -> np.ndarray:
    """The full address grid: ``F*`` evaluated over every current chunk.

    Returns an int64 array shaped like :attr:`eci.bounds` whose entry at
    chunk index ``I`` is the linear address ``F*(I)``.  Used by tests
    (bijectivity / figure ground truth) and by zone planning for small
    grids.
    """
    bounds = eci.bounds
    grids = np.indices(bounds, dtype=np.int64)
    flat = grids.reshape(len(bounds), -1).T              # (M, k)
    return f_star_many(eci, flat).reshape(bounds)
