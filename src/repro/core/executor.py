"""The shared bounded I/O executor.

The paper's premise is that the k-dimensional zones of a DRX array move
through the parallel file system *concurrently*.  The simulator charges
the analytic cost model's max-of-servers time, but until this module the
actual Python execution was strictly serial: every per-server batch, every
coalesced run, every write-back ran one after another on the calling
thread.  :class:`IOExecutor` supplies the missing real concurrency — a
bounded thread pool with

* ``submit`` / ``gather`` primitives used by the three wired layers
  (:class:`~repro.pfs.pfile.PFSFile` per-server dispatch,
  :class:`~repro.drx.mpool.Mpool` read-ahead and write-behind,
  :class:`~repro.drx.drxfile.DRXFile` double-buffered streaming),
* *keyed* in-flight futures so two requests for the same extent share one
  physical transfer instead of issuing it twice, and
* per-executor stats: in-flight high-water mark, busy vs. active wall
  time (their ratio is the achieved overlap), and the time callers spent
  blocked waiting on results.

Configuration is one environment variable::

    DRX_EXECUTOR_THREADS=0   # serial: every wired path takes the exact
                             # historical code path, bit- and
                             # stats-identical to the pre-executor tree
    DRX_EXECUTOR_THREADS=4   # the default: up to 4 concurrent transfers

Three executor *tiers* exist, each a process-wide singleton:

``"pfs"``
    Leaf tier.  Per-server request batches dispatched by
    :class:`~repro.pfs.pfile.PFSFile`.  Tasks here touch only
    :class:`~repro.pfs.server.IOServer` locks and never wait on another
    executor — the tier that may be waited on while holding file locks.
    The collective-I/O engine (:mod:`repro.mpi.collective`) rides this
    tier for free: aggregator ranks issue their phase-B windows through
    ``PFSFile.readv``/``writev``/``sieve_writev``, whose per-server
    fan-out is what this tier parallelizes.
``"drx"``
    Background tier.  Mpool read-ahead / write-behind and DRX streaming
    pipelines.  Tasks here are plain store calls; they may *block on*
    file locks and dispatch into the ``pfs`` tier, but nothing in the
    ``pfs`` tier ever waits for a ``drx`` slot, so the wait graph is
    acyclic and saturation cannot deadlock.
``"codec"``
    Pure-CPU leaf tier.  Batched chunk (de)compression offloaded by
    :class:`~repro.drx.storage.CompressedByteStore` — ``zlib`` releases
    the GIL, so codec time overlaps server I/O.  Codec tasks never
    submit further work, so ``drx``-tier tasks may wait on ``codec``
    results without closing a cycle.

A fourth tier sits *above* these three: the serve daemon
(:mod:`repro.serve.server`) executes admitted client requests on its
own private ``IOExecutor(name="serve")`` whose width is the daemon's
global in-flight limit.  Serve tasks call down into ``drx``-tier work
(which calls ``pfs``/``codec``), and nothing below ever waits on a
``serve`` slot, so the tier ordering ``serve → drx → {pfs, codec}``
keeps the wait graph acyclic.

Determinism contract: every wired call site checks
:func:`repro.core.faultsites.any_active` (and, where applicable, the
store's ``deterministic_only`` flag) and falls back to the serial path
while a fault plan is armed, so seeded fault schedules and chaos kill
sites fire in exactly the order they were scripted for.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

__all__ = [
    "IOExecutor",
    "ExecutorStats",
    "DEFAULT_THREADS",
    "THREADS_ENV",
    "configured_threads",
    "default_executor",
    "resolve_executor",
    "reset_default_executors",
]

#: Environment variable selecting the pool width (0 = serial).
THREADS_ENV = "DRX_EXECUTOR_THREADS"
#: Pool width when the environment does not say otherwise.
DEFAULT_THREADS = 4
#: Hard cap — more threads than this buys nothing for an I/O pool.
MAX_THREADS = 16


@dataclass
class ExecutorStats:
    """Cumulative counters for one :class:`IOExecutor`."""

    submitted: int = 0        #: tasks handed to the pool
    completed: int = 0        #: tasks that finished cleanly
    failed: int = 0           #: tasks that raised
    dedup_hits: int = 0       #: submits served by an in-flight keyed future
    inflight_hw: int = 0      #: high-water mark of concurrently pending tasks
    #: summed task execution time (seconds of work performed)
    busy_time: float = 0.0
    #: wall time during which >= 1 task was running
    active_time: float = 0.0
    #: time callers spent blocked in :meth:`IOExecutor.result` / ``gather``
    wait_time: float = 0.0

    @property
    def overlap_ratio(self) -> float:
        """Achieved concurrency: summed task time over active wall time.

        1.0 means the pool ran tasks back to back (no overlap — what a
        serial loop would achieve); ``n`` means on average ``n`` tasks
        were genuinely in flight together.
        """
        return self.busy_time / self.active_time if self.active_time else 0.0

    def snapshot(self) -> "ExecutorStats":
        return replace(self)


class IOExecutor:
    """A bounded thread pool specialized for overlapping I/O requests."""

    def __init__(self, threads: int, name: str = "io") -> None:
        if threads < 1:
            raise ValueError(f"IOExecutor needs >= 1 thread, got {threads}")
        self.threads = min(int(threads), MAX_THREADS)
        self.name = name
        self.stats = ExecutorStats()
        self._pool = ThreadPoolExecutor(
            max_workers=self.threads, thread_name_prefix=f"drx-{name}")
        self._lock = threading.Lock()
        self._inflight = 0
        self._running = 0
        self._active_since = 0.0
        #: key -> in-flight future (dedup of identical extents)
        self._keyed: dict[object, Future] = {}

    # ------------------------------------------------------------------
    def submit(self, fn: Callable, /, *args, key: object = None,
               **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``; return its future.

        With ``key`` set, an in-flight future previously submitted under
        the same key is returned instead of issuing the work twice — the
        dedup that lets a demand read adopt a read-ahead already on the
        wire.  The key is released when the future completes.
        """
        with self._lock:
            if key is not None:
                prior = self._keyed.get(key)
                if prior is not None and not prior.done():
                    self.stats.dedup_hits += 1
                    return prior
            self.stats.submitted += 1
            self._inflight += 1
            self.stats.inflight_hw = max(self.stats.inflight_hw,
                                         self._inflight)

        def run():
            t0 = time.perf_counter()
            with self._lock:
                self._running += 1
                if self._running == 1:
                    self._active_since = t0
            try:
                return fn(*args, **kwargs)
            finally:
                t1 = time.perf_counter()
                with self._lock:
                    self.stats.busy_time += t1 - t0
                    self._running -= 1
                    if self._running == 0:
                        self.stats.active_time += t1 - self._active_since

        fut = self._pool.submit(run)

        def done(f: Future, key=key) -> None:
            with self._lock:
                self._inflight -= 1
                if f.cancelled() or f.exception() is not None:
                    self.stats.failed += 1
                else:
                    self.stats.completed += 1
                if key is not None and self._keyed.get(key) is f:
                    del self._keyed[key]

        fut.add_done_callback(done)
        if key is not None:
            with self._lock:
                if not fut.done():
                    self._keyed[key] = fut
        return fut

    def result(self, fut: Future):
        """Block on one future, charging the wait to ``stats.wait_time``."""
        t0 = time.perf_counter()
        try:
            return fut.result()
        finally:
            with self._lock:
                self.stats.wait_time += time.perf_counter() - t0

    def gather(self, futures: Sequence[Future],
               return_exceptions: bool = False) -> list:
        """Wait for every future, returning results in submission order.

        With ``return_exceptions`` the raised exception object takes the
        failed slot; otherwise the first failure (in order) is re-raised
        after every future has settled, so no task is abandoned mid-air.
        """
        out: list = []
        first_error: BaseException | None = None
        t0 = time.perf_counter()
        for fut in futures:
            try:
                out.append(fut.result())
            except Exception as exc:  # noqa: BLE001 - transported verbatim
                if return_exceptions:
                    out.append(exc)
                elif first_error is None:
                    first_error = exc
                    out.append(None)
                else:
                    out.append(None)
        with self._lock:
            self.stats.wait_time += time.perf_counter() - t0
        if first_error is not None:
            raise first_error
        return out

    def map(self, fn: Callable, items: Iterable) -> list:
        """``gather([submit(fn, it) for it in items])``."""
        return self.gather([self.submit(fn, it) for it in items])

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        """Stop the pool.  ``cancel_futures`` drops queued-but-unstarted
        tasks — the serve daemon's abrupt-kill path, where work that
        never started must not run against abandoned files."""
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IOExecutor(name={self.name!r}, threads={self.threads}, "
                f"inflight={self._inflight})")


# ---------------------------------------------------------------------------
# process-wide defaults (one executor per tier, sized by the environment)
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_defaults: dict[str, IOExecutor | None] = {}


def configured_threads() -> int:
    """The pool width requested via ``DRX_EXECUTOR_THREADS``.

    Unset → :data:`DEFAULT_THREADS`; unparsable values fall back to the
    default too (a mistyped variable must not silently serialize the
    stack); negative values clamp to 0 (serial).
    """
    raw = os.environ.get(THREADS_ENV)
    if raw is None or raw.strip() == "":
        return DEFAULT_THREADS
    try:
        n = int(raw)
    except ValueError:
        return DEFAULT_THREADS
    return max(0, min(n, MAX_THREADS))


def default_executor(tier: str = "drx") -> IOExecutor | None:
    """The process-wide executor for ``tier`` (``None`` = serial).

    Created lazily on first use from :func:`configured_threads`; cached
    until :func:`reset_default_executors`.
    """
    with _default_lock:
        if tier not in _defaults:
            n = configured_threads()
            _defaults[tier] = IOExecutor(n, name=tier) if n > 0 else None
        return _defaults[tier]


def resolve_executor(executor: "IOExecutor | None | str" = "auto",
                     tier: str = "drx") -> IOExecutor | None:
    """Normalize an ``executor`` constructor argument.

    ``"auto"`` resolves to the tier's environment-configured default,
    ``None`` forces the serial path, and an :class:`IOExecutor` instance
    is used as-is.
    """
    if executor == "auto":
        return default_executor(tier)
    return executor  # type: ignore[return-value]


def reset_default_executors() -> None:
    """Drop the cached per-tier defaults (tests re-reading the env)."""
    with _default_lock:
        stale = list(_defaults.values())
        _defaults.clear()
    for ex in stale:
        if ex is not None:
            ex.shutdown(wait=False)
