"""Element <-> chunk arithmetic.

The paper stores the array by *chunks*: fixed-shape k-dimensional
sub-arrays that are the unit of transfer between memory and the file
("A chunk is the unit of access of data between memory and file
storage").  Within a chunk, elements are laid out in conventional
row-major order ("The elements within a chunk are assigned according to
the conventional row-major ordering").

This module provides the pure arithmetic connecting the *element* index
space to the *chunk* index space:

* which chunk an element lives in and its row-major offset inside it;
* how many chunks cover the current element bounds (the last chunk of a
  dimension may be partial — "the maximum index of a dimension does not
  necessarily fall exactly on a segment boundary");
* which chunks intersect a rectilinear element box, and the per-chunk
  source/destination slices needed to copy that intersection — the
  primitive underneath every sub-array read/write in DRX and DRX-MP.

Everything is pure and deterministic; heavy paths are vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Iterator, Sequence

import numpy as np

from .errors import DRXExtendError, DRXIndexError

__all__ = [
    "ceil_div",
    "chunk_bounds_for",
    "chunk_of",
    "within_chunk_offset",
    "chunk_element_box",
    "chunks_covering_box",
    "ChunkIntersection",
    "iter_box_intersections",
    "box_shape",
    "validate_box",
]


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    return -(-a // b)


def chunk_bounds_for(element_bounds: Sequence[int],
                     chunk_shape: Sequence[int]) -> tuple[int, ...]:
    """Chunk-level bounds covering ``element_bounds``.

    ``chunk_bounds_for((10, 12), (2, 3)) == (5, 4)``: the Fig. 1 array
    A[10][12] with 2x3 chunks occupies a 5x4 chunk grid.
    """
    if len(element_bounds) != len(chunk_shape):
        raise DRXExtendError(
            f"rank mismatch: bounds {tuple(element_bounds)} vs chunk shape "
            f"{tuple(chunk_shape)}"
        )
    if any(c < 1 for c in chunk_shape):
        raise DRXExtendError(f"chunk shape must be >= 1, got {tuple(chunk_shape)}")
    if any(n < 1 for n in element_bounds):
        raise DRXExtendError(f"element bounds must be >= 1, got {tuple(element_bounds)}")
    return tuple(ceil_div(n, c) for n, c in zip(element_bounds, chunk_shape))


def chunk_of(element_index: Sequence[int],
             chunk_shape: Sequence[int]) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Chunk index and within-chunk coordinates of one element.

    Returns ``(chunk_index, local_coords)`` with
    ``element_index = chunk_index * chunk_shape + local_coords``.
    """
    ci = []
    local = []
    for i, c in zip(element_index, chunk_shape):
        if i < 0:
            raise DRXIndexError(f"negative element index {tuple(element_index)}")
        q, r = divmod(i, c)
        ci.append(q)
        local.append(r)
    return tuple(ci), tuple(local)


def within_chunk_offset(local_coords: Sequence[int],
                        chunk_shape: Sequence[int]) -> int:
    """Row-major linear offset of ``local_coords`` inside one chunk."""
    off = 0
    for coord, extent in zip(local_coords, chunk_shape):
        off = off * extent + coord
    return off


def chunk_element_box(chunk_index: Sequence[int],
                      chunk_shape: Sequence[int],
                      element_bounds: Sequence[int] | None = None,
                      ) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Half-open element box ``(lo, hi)`` covered by a chunk.

    If ``element_bounds`` is given, the box is clipped to it (partial edge
    chunks store a full-size chunk but only the clipped region is valid).
    """
    lo = tuple(ci * c for ci, c in zip(chunk_index, chunk_shape))
    hi = tuple(l + c for l, c in zip(lo, chunk_shape))
    if element_bounds is not None:
        hi = tuple(min(h, n) for h, n in zip(hi, element_bounds))
        if any(l >= h for l, h in zip(lo, hi)):
            raise DRXIndexError(
                f"chunk {tuple(chunk_index)} lies entirely outside element "
                f"bounds {tuple(element_bounds)}"
            )
    return lo, hi


def validate_box(lo: Sequence[int], hi: Sequence[int],
                 element_bounds: Sequence[int]) -> None:
    """Check that ``[lo, hi)`` is a non-empty box inside ``element_bounds``."""
    if len(lo) != len(hi) or len(lo) != len(element_bounds):
        raise DRXIndexError("box rank mismatch")
    for l, h, n in zip(lo, hi, element_bounds):
        if not (0 <= l < h <= n):
            raise DRXIndexError(
                f"box lo={tuple(lo)} hi={tuple(hi)} invalid for bounds "
                f"{tuple(element_bounds)}"
            )


def box_shape(lo: Sequence[int], hi: Sequence[int]) -> tuple[int, ...]:
    """Shape of the half-open box ``[lo, hi)``."""
    return tuple(h - l for l, h in zip(lo, hi))


def chunks_covering_box(lo: Sequence[int], hi: Sequence[int],
                        chunk_shape: Sequence[int]) -> np.ndarray:
    """All chunk indices intersecting the half-open element box ``[lo, hi)``.

    Returns an ``(m, k)`` int64 array in row-major order of the chunk
    grid.  Vectorized: built from one ``np.indices`` call.
    """
    first = [l // c for l, c in zip(lo, chunk_shape)]
    last = [ceil_div(h, c) for h, c in zip(hi, chunk_shape)]  # exclusive
    extents = [b - a for a, b in zip(first, last)]
    if any(e <= 0 for e in extents):
        return np.empty((0, len(chunk_shape)), dtype=np.int64)
    grid = np.indices(extents, dtype=np.int64).reshape(len(extents), -1).T
    return grid + np.asarray(first, dtype=np.int64)


@dataclass(frozen=True, slots=True)
class ChunkIntersection:
    """The overlap of a request box with one chunk.

    Attributes
    ----------
    chunk_index:
        k-dimensional index of the chunk.
    chunk_slices:
        Slices *within the chunk* (local coordinates) selecting the
        overlapping region.
    box_slices:
        Slices *within the request box* (coordinates relative to the box
        origin) receiving/supplying that region.
    full:
        True when the chunk is entirely inside the request box (the whole
        chunk payload moves — the fast path for chunk-aligned I/O).
    """

    chunk_index: tuple[int, ...]
    chunk_slices: tuple[slice, ...]
    box_slices: tuple[slice, ...]
    full: bool

    @property
    def nelems(self) -> int:
        return prod(s.stop - s.start for s in self.chunk_slices)


def iter_box_intersections(lo: Sequence[int], hi: Sequence[int],
                           chunk_shape: Sequence[int],
                           ) -> Iterator[ChunkIntersection]:
    """Iterate every chunk intersecting ``[lo, hi)`` with its copy slices.

    The iteration order is row-major over the covered chunk grid, which is
    also the order :func:`chunks_covering_box` returns.
    """
    k = len(chunk_shape)
    for row in chunks_covering_box(lo, hi, chunk_shape):
        c_lo = [int(row[j]) * chunk_shape[j] for j in range(k)]
        c_hi = [c_lo[j] + chunk_shape[j] for j in range(k)]
        o_lo = [max(c_lo[j], lo[j]) for j in range(k)]
        o_hi = [min(c_hi[j], hi[j]) for j in range(k)]
        chunk_slices = tuple(
            slice(o_lo[j] - c_lo[j], o_hi[j] - c_lo[j]) for j in range(k)
        )
        box_slices = tuple(
            slice(o_lo[j] - lo[j], o_hi[j] - lo[j]) for j in range(k)
        )
        full = all(o_lo[j] == c_lo[j] and o_hi[j] == c_hi[j] for j in range(k))
        yield ChunkIntersection(
            chunk_index=tuple(int(x) for x in row),
            chunk_slices=chunk_slices,
            box_slices=box_slices,
            full=full,
        )
