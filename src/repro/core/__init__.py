"""``repro.core`` — the paper's primary contribution.

Axial vectors, the extendible chunk-index growth engine, the mapping
function ``F*`` and its inverse ``F*^-1`` (scalar and vectorized),
element/chunk arithmetic, the Fig.-2 allocation orders, and the ``.xmd``
meta-data model.
"""

from .axial import SENTINEL_ADDRESS, AxialRecord, AxialVector
from .chunking import (
    ChunkIntersection,
    box_shape,
    ceil_div,
    chunk_bounds_for,
    chunk_element_box,
    chunk_of,
    chunks_covering_box,
    iter_box_intersections,
    validate_box,
    within_chunk_offset,
)
from .errors import (
    DRXClosedError,
    DRXDistributionError,
    DRXError,
    DRXExtendError,
    DRXFileError,
    DRXFileExistsError,
    DRXFileNotFoundError,
    DRXFormatError,
    DRXIndexError,
    DRXTypeError,
    MPIError,
    PFSError,
)
from .extendible import ExtendibleChunkIndex, Segment, replay_history
from .hyperslab import Hyperslab
from .inverse import f_star_inv, f_star_inv_many
from .mapping import all_addresses, f_star, f_star_many
from .metadata import FORMAT_VERSION, MAGIC, Attributes, DRXMeta, DRXType
from .orders import AxialOrder, RowMajorOrder, SymmetricShellOrder, ZOrder, next_pow2

__all__ = [
    "AxialRecord",
    "AxialVector",
    "SENTINEL_ADDRESS",
    "ExtendibleChunkIndex",
    "Segment",
    "replay_history",
    "Hyperslab",
    "f_star",
    "f_star_many",
    "f_star_inv",
    "f_star_inv_many",
    "all_addresses",
    "DRXMeta",
    "DRXType",
    "Attributes",
    "MAGIC",
    "FORMAT_VERSION",
    "ChunkIntersection",
    "box_shape",
    "ceil_div",
    "chunk_bounds_for",
    "chunk_element_box",
    "chunk_of",
    "chunks_covering_box",
    "iter_box_intersections",
    "validate_box",
    "within_chunk_offset",
    "RowMajorOrder",
    "ZOrder",
    "SymmetricShellOrder",
    "AxialOrder",
    "next_pow2",
    "DRXError",
    "DRXIndexError",
    "DRXExtendError",
    "DRXFileError",
    "DRXFileExistsError",
    "DRXFileNotFoundError",
    "DRXFormatError",
    "DRXClosedError",
    "DRXTypeError",
    "DRXDistributionError",
    "MPIError",
    "PFSError",
]
