"""Named fault sites inside the storage stack (registry + dispatch).

A *fault site* is a named location in the storage code where the fault
machinery may intervene.  Production code calls :func:`crash_point` at
each such location; the call is a no-op unless a fault plan
(:class:`repro.drx.resilience.FaultPlan`) is *active*, in which case the
plan observes the site and may act.  Two families of sites exist:

* :data:`CRASH_SITES` — locations in a commit sequence (meta-data
  rewrite, header flip, pool flush) where a *process death* would leave
  the on-disk state in a specific intermediate shape.  Crash-consistency
  tests sweep every one and assert the array reopens to a valid
  old-or-new state.
* :data:`KILL_SITES` — locations in the parallel-file-system request
  paths where a whole *I/O server* may die (permanently or transiently)
  mid-operation.  Chaos tests attach ``hook`` rules here that call
  ``ParallelFileSystem.kill_server`` and assert that replicated layouts
  keep every read bit-identical.

This module lives in :mod:`repro.core` so that both the ``drx`` and
``pfs`` layers can import it without cycles (``drx.storage`` imports
``pfs.pfile``, so ``pfs`` must not import anything from ``drx``).  The
historical import path :mod:`repro.drx.faultpoints` re-exports
everything here.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["crash_point", "activate", "deactivate", "any_active",
           "CRASH_SITES", "KILL_SITES", "DAEMON_SITES", "NET_SITES",
           "ALL_SITES"]


#: Every named crash site, with the on-disk state a crash there leaves.
#: Tests assert this inventory is live (each site fires during a normal
#: commit cycle) and sweep it for crash consistency.
CRASH_SITES: dict[str, str] = {
    # two-file (.xmd) meta-data commit -------------------------------------
    "xmd.commit.begin":
        "before anything is written: old meta-data fully intact",
    "posix.replace.opened":
        "temp file created but empty: target file untouched",
    "posix.replace.written":
        "temp file holds the new bytes, not yet fsynced",
    "posix.replace.synced":
        "temp file durable, rename not yet issued: target still old",
    "posix.replace.renamed":
        "rename issued, directory not yet fsynced: target old or new",
    "xmd.commit.end":
        "new meta-data fully committed",
    # single-file (.drx) shadow-slot header commit -------------------------
    "sf.meta.before_blob":
        "nothing written: both header slots and blobs intact",
    "sf.meta.after_blob":
        "new meta blob written to the shadow region, header still points "
        "at the old blob",
    "sf.header.before_slot":
        "new blob durable, slot not yet flipped: readers see the old "
        "generation",
    "sf.header.after_slot":
        "new slot written (possibly not yet durable): readers see old or "
        "new generation, both valid",
    # buffer-pool flush ----------------------------------------------------
    "mpool.flush.begin":
        "no dirty page written back yet",
    "mpool.flush.after_writeback":
        "dirty chunks written to the store, store flush not yet issued",
    # compressed-chunk allocation-table commit -----------------------------
    "codec.slots.written":
        "compressed chunk payloads written to their (copy-on-write) "
        "slots, allocation table and CRCs not yet committed: reopen "
        "sees the previous table with all of its payloads intact",
}

#: Every named server-kill site: locations in the PFS request paths
#: where a chaos rule may take a whole I/O server down mid-operation.
#: Sites ending in ``.batch`` are visited once before *each* server
#: batch, so a rule's ``after`` count selects how far into the fan-out
#: the failure strikes.
KILL_SITES: dict[str, str] = {
    "server.kill.readv.begin":
        "a replicated vectored read was planned, no server touched yet",
    "server.kill.readv.batch":
        "before each per-server read batch of a replicated read: earlier "
        "batches already answered, later ones must fail over",
    "server.kill.writev.begin":
        "a replicated vectored write was planned, no server touched yet",
    "server.kill.writev.batch":
        "before each per-server write batch of the replica fan-out: "
        "earlier copies already landed, the dying server's copy is skipped",
    "server.kill.collective.entry":
        "every rank, before the collective extent exchange",
    "server.kill.collective.exchange":
        "every rank, requests planned, before shipping its phase-A "
        "requests/data to the aggregator ranks",
    "server.kill.collective.read":
        "each aggregator rank, its file domain's extents merged, before "
        "the aggregated PFS read of that domain",
    "server.kill.collective.write":
        "each aggregator rank, its file domain's extents merged, before "
        "the aggregated PFS write of that domain",
    "server.kill.collective.sieve":
        "aggregator rank, before a data-sieving covering access of a "
        "hole-bearing window (covering read, or read-modify-write)",
    "server.kill.rebuild.begin":
        "a server rebuild was requested, nothing copied yet",
    "server.kill.rebuild.batch":
        "before each coalesced copy batch of an online rebuild: the "
        "target object is partially re-replicated",
}

#: Named sites inside the serve daemon's request lifecycle
#: (:mod:`repro.serve.server`) where the whole *daemon process* may die.
#: Chaos tests arm ``crash`` rules here and assert that restarting the
#: daemon and re-running the client workload converges to a
#: bit-identical array.  Kept out of :data:`KILL_SITES` so the PFS
#: chaos sweep (which reaches every ``KILL_SITES`` entry through a pure
#: storage lifecycle) stays complete without running a daemon.
DAEMON_SITES: dict[str, str] = {
    "server.kill.daemon.admitted":
        "request admitted (in-flight slot held), range locks not yet "
        "taken, store untouched",
    "server.kill.daemon.locked":
        "range locks held, store not yet touched: the mutation never "
        "started",
    "server.kill.daemon.journaled":
        "the mutation's BEGIN/DATA intent is in the write-ahead journal "
        "(not yet fsynced), the Mpool untouched: no COMMIT record, so "
        "recovery discards the transaction and the client's retry "
        "applies it exactly once",
    "server.kill.daemon.applied":
        "mutation applied to the shared store and its COMMIT record "
        "appended, acknowledgement not yet sent: recovery replays the "
        "committed transaction and answers the client's retry from the "
        "recovered dedup table",
    "server.kill.daemon.drain.flush":
        "graceful drain finished the in-flight work, arrays not yet "
        "flushed/committed: unacknowledged state may be lost, "
        "acknowledged (journal-committed) state is replayed on recovery",
}

#: Named sites at the daemon's network boundary — the instants where a
#: request or its acknowledgement exists on exactly one side of the
#: wire.  Chaos rules here model `kill -9` in the lost-request /
#: lost-ack windows; :class:`repro.serve.netfault.FaultySocket` covers
#: the corruption (bit flip / torn frame / delay) side of the same
#: boundary client-side.
NET_SITES: dict[str, str] = {
    "serve.net.recv.request":
        "a complete request frame was received and CRC-verified, "
        "nothing dispatched yet: the client gets no reply and must "
        "re-issue under the same idempotency key",
    "serve.net.send.reply":
        "the reply is computed (journal synced for mutations), the OK "
        "frame not yet on the wire: the classic lost-ack window — the "
        "retried request must be answered from the dedup table, never "
        "re-applied",
}

#: The union the dispatcher validates against.
ALL_SITES: dict[str, str] = {**CRASH_SITES, **KILL_SITES, **DAEMON_SITES,
                             **NET_SITES}


class _Plan(Protocol):  # pragma: no cover - typing aid only
    def note_site(self, site: str) -> None: ...


#: Currently active fault plans (usually zero or one; nesting composes).
_ACTIVE: list[_Plan] = []


def crash_point(site: str) -> None:
    """Announce reaching fault site ``site``.

    No-op with no active plan; otherwise every active plan observes the
    site and may raise :class:`~repro.core.errors.CrashError` (crash
    sites) or run a chaos hook such as a server kill (kill sites).
    """
    if not _ACTIVE:
        return
    for plan in list(_ACTIVE):
        plan.note_site(site)


def any_active() -> bool:
    """Whether any fault plan is currently observing sites.

    The concurrency layers consult this before going parallel: fault
    schedules are op-count ordered, so while a plan is armed every wired
    path (per-server dispatch, read-ahead, write-behind, streaming
    pipelines) falls back to its serial order to keep injected faults
    and kill sites firing deterministically.
    """
    return bool(_ACTIVE)


def activate(plan: _Plan) -> None:
    """Register ``plan`` to observe fault sites (idempotent)."""
    if plan not in _ACTIVE:
        _ACTIVE.append(plan)


def deactivate(plan: _Plan) -> None:
    """Stop ``plan`` observing fault sites (idempotent)."""
    try:
        _ACTIVE.remove(plan)
    except ValueError:
        pass
