"""The ``.xmd`` meta-data model of a DRX / DRX-MP array file.

The paper (section IV): a user-visible array name ``xyz`` is stored as a
pair of files — ``xyz.xmd`` holding the meta-data and ``xyz.xta`` holding
the native binary chunk data.  The meta-data "maintains a persistent copy
of the content of the axial-vectors used in the linear address
calculation.  Other relevant pieces of information ... include the number
of dimensions of the array, the data type, values of the chunk shape, the
instantaneous bounds of the array, the number of chunks in the principal
array file, etc.".

We serialize the meta-data as a magic-prefixed JSON document: compact,
self-describing and byte-for-byte deterministic (sorted keys), so tests
can assert replica equality across processes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import prod
from typing import Sequence

import numpy as np

from .chunking import chunk_bounds_for
from .errors import DRXFormatError, DRXTypeError
from .extendible import ExtendibleChunkIndex

__all__ = ["DRXType", "DRXMeta", "Attributes", "MAGIC", "FORMAT_VERSION",
           "SUPPORTED_FORMAT_VERSIONS"]

MAGIC = b"DRXM"
#: Current on-disk document version.  Version history:
#:   1 — original document (rank, dtype, chunking, bounds, axial index).
#:   2 — adds the optional ``chunk_crcs`` table (per-chunk CRC32
#:       checksums, keyed by linear chunk address).  Version-1 documents
#:       remain readable; version-2 documents without checksums are
#:       structurally identical to version 1 apart from the number.
#:   3 — adds the ``codec`` name and the ``chunk_slots`` allocation
#:       table of compressed arrays (per-chunk physical extents — see
#:       :mod:`repro.drx.chunkalloc`).  Emitted *only* for arrays with
#:       ``codec != "none"``: plain arrays keep writing the version-2
#:       document byte for byte, so the direct-placement fast path stays
#:       bit-identical and older readers keep working.
FORMAT_VERSION = 3
#: Document versions :meth:`DRXMeta.from_bytes` accepts.
SUPPORTED_FORMAT_VERSIONS = frozenset({1, 2, 3})

#: The element types the paper supports: "integer, double and complex.
#: These correspond to the basic data types that can be defined and
#: accessed via MPI-2 remote memory access operations".
_DRX_TYPES: dict[str, np.dtype] = {
    "int": np.dtype(np.int64),
    "double": np.dtype(np.float64),
    "complex": np.dtype(np.complex128),
}


class Attributes(dict):
    """User attributes of an array (NetCDF/HDF5-style name/value pairs).

    Stored inside the ``.xmd`` document, so values must be
    JSON-serializable; this is checked at assignment time rather than at
    flush time so the error points at the offending statement.
    """

    def __setitem__(self, key, value) -> None:
        if not isinstance(key, str):
            raise DRXTypeError(f"attribute names must be strings, got "
                               f"{type(key).__name__}")
        try:
            json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise DRXTypeError(
                f"attribute {key!r} value is not JSON-serializable: {exc}"
            ) from exc
        super().__setitem__(key, value)

    def update(self, *args, **kwargs) -> None:  # keep validation
        for k, v in dict(*args, **kwargs).items():
            self[k] = v


class DRXType:
    """Symbolic names of the supported element types."""

    INT = "int"
    DOUBLE = "double"
    COMPLEX = "complex"

    @staticmethod
    def to_numpy(name: str) -> np.dtype:
        try:
            return _DRX_TYPES[name]
        except KeyError:
            raise DRXTypeError(
                f"unsupported DRX type {name!r}; "
                f"supported: {sorted(_DRX_TYPES)}"
            ) from None

    @staticmethod
    def from_numpy(dtype: np.dtype | type) -> str:
        dt = np.dtype(dtype)
        for name, candidate in _DRX_TYPES.items():
            if candidate == dt:
                return name
        raise DRXTypeError(
            f"unsupported element dtype {dt}; "
            f"supported: {sorted(_DRX_TYPES)}"
        )


@dataclass
class DRXMeta:
    """In-memory form of one array's ``.xmd`` meta-data.

    The element-level state (``element_bounds``) and the chunk-level state
    (the :class:`ExtendibleChunkIndex`) are kept together and must stay
    consistent: ``eci.bounds == chunk_bounds_for(element_bounds,
    chunk_shape)`` at all times.
    """

    dtype_name: str
    chunk_shape: tuple[int, ...]
    element_bounds: tuple[int, ...]
    eci: ExtendibleChunkIndex
    memory_order: str = "C"
    extra: dict = field(default_factory=dict)
    #: Per-chunk CRC32 table (linear address -> checksum), or ``None``
    #: when integrity checking is disabled for this array.  Committed
    #: with the rest of the document, so the checksums describe the last
    #: *flushed* state of each chunk.  For compressed arrays the CRC
    #: covers the framed *compressed* payload.
    chunk_crcs: dict[int, int] | None = None
    #: Registry name of the per-chunk compression codec
    #: (:func:`repro.drx.codec.get_codec`); ``"none"`` keeps the
    #: historical direct-placement chunk layout.
    codec: str = "none"
    #: Serialized slot-allocation table of a compressed array
    #: (:meth:`repro.drx.chunkalloc.SlotTable.serialize`), ``None`` for
    #: plain arrays.  Committed with the document, so it describes the
    #: last flushed physical placement.
    chunk_slots: dict | None = None
    #: Session-local derived-value cache (committed datatypes, chunk
    #: plans — see :mod:`repro.drxmp.subarray`).  Never serialized,
    #: never compared; entries depending on the chunk index key
    #: themselves on ``eci.generation``.
    _cache: dict = field(default_factory=dict, init=False, repr=False,
                         compare=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, element_bounds: Sequence[int],
               chunk_shape: Sequence[int],
               dtype: str | np.dtype | type = DRXType.DOUBLE) -> "DRXMeta":
        """Meta-data of a freshly created array.

        ``dtype`` may be a DRX type name (``"int" | "double" | "complex"``)
        or any equivalent NumPy dtype.
        """
        if isinstance(dtype, str) and dtype in _DRX_TYPES:
            dtype_name = dtype
        else:
            dtype_name = DRXType.from_numpy(dtype)
        element_bounds = tuple(int(b) for b in element_bounds)
        chunk_shape = tuple(int(c) for c in chunk_shape)
        chunk_bounds = chunk_bounds_for(element_bounds, chunk_shape)
        return cls(
            dtype_name=dtype_name,
            chunk_shape=chunk_shape,
            element_bounds=element_bounds,
            eci=ExtendibleChunkIndex(chunk_bounds),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.element_bounds)

    @property
    def dtype(self) -> np.dtype:
        return DRXType.to_numpy(self.dtype_name)

    @property
    def chunk_elems(self) -> int:
        """Elements per chunk, ``B = prod(chunk_shape)``."""
        return prod(self.chunk_shape)

    @property
    def chunk_nbytes(self) -> int:
        """Bytes per chunk in the ``.xta`` file."""
        return self.chunk_elems * self.dtype.itemsize

    @property
    def num_chunks(self) -> int:
        return self.eci.num_chunks

    @property
    def data_nbytes(self) -> int:
        """Total size of the ``.xta`` file."""
        return self.num_chunks * self.chunk_nbytes

    @property
    def chunk_bounds(self) -> tuple[int, ...]:
        return self.eci.bounds

    @property
    def attrs(self) -> Attributes:
        """User attributes, persisted with the meta-data."""
        cur = self.extra.get("attrs")
        if not isinstance(cur, Attributes):
            cur = Attributes(cur or {})
            self.extra["attrs"] = cur
        return cur

    def check_consistent(self) -> None:
        """Assert the element-level and chunk-level views agree."""
        expect = chunk_bounds_for(self.element_bounds, self.chunk_shape)
        if expect != self.eci.bounds:
            raise DRXFormatError(
                f"meta-data inconsistent: element bounds "
                f"{self.element_bounds} with chunks {self.chunk_shape} "
                f"need chunk bounds {expect}, index holds {self.eci.bounds}"
            )

    # ------------------------------------------------------------------
    # growth (element level)
    # ------------------------------------------------------------------
    def extend_elements(self, dim: int, by: int) -> list[int]:
        """Grow ``element_bounds[dim]`` by ``by`` elements.

        Extends the chunk index only when the new bound spills past the
        last (possibly partial) chunk.  Returns the linear addresses of
        any newly adjoined chunks (in increasing order) so the file layer
        can materialize them.
        """
        old_chunks = self.eci.bounds[dim]
        new_bound = self.element_bounds[dim] + by
        bounds = list(self.element_bounds)
        bounds[dim] = new_bound
        need = chunk_bounds_for(bounds, self.chunk_shape)[dim]
        new_addresses: list[int] = []
        if need > old_chunks:
            before = self.eci.num_chunks
            self.eci.extend(dim, need - old_chunks)
            new_addresses = list(range(before, self.eci.num_chunks))
        self.element_bounds = tuple(bounds)
        return new_addresses

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        # Plain arrays emit the version-2 document unchanged (byte for
        # byte): the version-3 fields exist only for compressed arrays.
        compressed = self.codec != "none" or self.chunk_slots is not None
        doc = {
            "format_version": FORMAT_VERSION if compressed else 2,
            "dtype": self.dtype_name,
            "rank": self.rank,
            "chunk_shape": list(self.chunk_shape),
            "element_bounds": list(self.element_bounds),
            "memory_order": self.memory_order,
            "num_chunks": self.num_chunks,
            "index": self.eci.to_dict(),
            "extra": self.extra,
        }
        if compressed:
            doc["codec"] = self.codec
            doc["chunk_slots"] = self.chunk_slots
        if self.chunk_crcs is not None:
            # JSON object keys must be strings; addresses round-trip below
            doc["chunk_crcs"] = {str(a): int(c)
                                 for a, c in self.chunk_crcs.items()}
        return MAGIC + json.dumps(doc, sort_keys=True).encode("utf-8")

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DRXMeta":
        if not raw.startswith(MAGIC):
            raise DRXFormatError("not a DRX meta-data file (bad magic)")
        try:
            doc = json.loads(raw[len(MAGIC):])
        except json.JSONDecodeError as exc:
            raise DRXFormatError(f"corrupt meta-data: {exc}") from exc
        if doc.get("format_version") not in SUPPORTED_FORMAT_VERSIONS:
            raise DRXFormatError(
                f"unsupported format version {doc.get('format_version')}"
            )
        crcs_doc = doc.get("chunk_crcs")
        try:
            meta = cls(
                dtype_name=str(doc["dtype"]),
                chunk_shape=tuple(int(c) for c in doc["chunk_shape"]),
                element_bounds=tuple(int(b) for b in doc["element_bounds"]),
                eci=ExtendibleChunkIndex.from_dict(doc["index"]),
                memory_order=str(doc.get("memory_order", "C")),
                extra=dict(doc.get("extra", {})),
                chunk_crcs=None if crcs_doc is None else
                {int(a): int(c) for a, c in crcs_doc.items()},
                codec=str(doc.get("codec", "none")),
                chunk_slots=doc.get("chunk_slots"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DRXFormatError(f"malformed meta-data document") from exc
        if doc.get("rank") != meta.rank:
            raise DRXFormatError(
                f"meta-data rank {doc.get('rank')} does not match bounds "
                f"({meta.rank}-dimensional)"
            )
        if doc.get("num_chunks") != meta.num_chunks:
            raise DRXFormatError(
                f"meta-data chunk count {doc.get('num_chunks')} does not "
                f"match index ({meta.num_chunks})"
            )
        meta.check_consistent()
        # Validate the declared dtype eagerly.
        meta.dtype
        return meta

    def replicate(self) -> "DRXMeta":
        """Deep copy, as DRX-MP replicates meta-data into every process."""
        return DRXMeta.from_bytes(self.to_bytes())
