"""The DRA baseline: Disk Resident Arrays (fixed bounds, no growth).

DRA [Nieplocha & Foster 1996] is "the persistent storage counterpart of
the memory resident Global-Array"; the paper positions DRX-MP as "an
alternative library to the disk resident array (DRA)" whose
"functionalities ... subsumes those of" DRA, the difference being that
the principal array of DRA cannot grow.

That subsumption is literal in this reproduction: a never-extended
axial-vector array has exactly one segment whose record holds the plain
row-major coefficients, so DRA's chunk layout *is* DRX's initial layout.
:class:`DRAFile` therefore wraps the DRX-MP machinery with extension
disabled; growing a DRA requires :func:`grow_by_copy` — create a larger
array and copy everything — whose cost is what experiment E1 charges
this baseline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import DRXExtendError
from ..mpi.comm import Intracomm
from ..pfs.filesystem import ParallelFileSystem
from ..drxmp.api import DRXMPFile

__all__ = ["DRAFile", "grow_by_copy"]


class DRAFile(DRXMPFile):
    """A fixed-bounds parallel chunked array file (DRA semantics)."""

    @classmethod
    def create(cls, comm: Intracomm, fs: ParallelFileSystem, name: str,
               bounds: Sequence[int], chunk_shape: Sequence[int],
               dtype="double") -> "DRAFile":
        obj = super().create(comm, fs, name, bounds, chunk_shape, dtype)
        assert isinstance(obj, DRAFile)
        return obj

    def extend(self, dim: int, by: int) -> None:
        """DRA arrays have fixed bounds."""
        raise DRXExtendError(
            "DRA arrays are not extendible; create a larger array and "
            "copy (see grow_by_copy) — this is precisely the cost DRX-MP "
            "eliminates"
        )


def grow_by_copy(comm: Intracomm, fs: ParallelFileSystem, old: DRAFile,
                 new_name: str, new_bounds: Sequence[int]) -> DRAFile:
    """Grow a DRA the only way possible: create bigger, copy, (drop old).

    Collective.  Returns the new array; the caller is responsible for
    deleting the old one.  The copy moves every existing element through
    zone-collective I/O — the full-data-rewrite cost that E1 measures
    against DRX-MP's zero-copy ``extend``.
    """
    new_bounds = tuple(int(b) for b in new_bounds)
    if len(new_bounds) != old.meta.rank:
        raise DRXExtendError(
            f"rank mismatch: {len(new_bounds)} vs {old.meta.rank}"
        )
    if any(n < o for n, o in zip(new_bounds, old.shape)):
        raise DRXExtendError(
            f"new bounds {new_bounds} shrink the array {old.shape}"
        )
    new = DRAFile.create(comm, fs, new_name, new_bounds, old.chunk_shape,
                         old.meta.dtype_name)
    # copy through the old array's BLOCK zones
    part = old.partition()
    mem = old.read_zone(part)
    lo = mem.origin
    if mem.array.size:
        # independent writes of disjoint zones into the new array
        new.write(lo, mem.array)
    comm.barrier()
    return new
