"""``repro.baselines`` — the comparator systems of the paper.

* :class:`ChunkedBTreeFile` — HDF5 model: chunked, B-tree indexed,
  lazily allocated in write order;
* :class:`ConventionalArrayFile` — NetCDF model: flat row-major, one
  record dimension, reorganization for anything else;
* :class:`DRAFile` — Disk Resident Arrays: chunked + distributed but
  fixed bounds (growth = create bigger + copy);
* :class:`BTree` — the disk-page B-tree substrate itself, with counted
  node I/O.
"""

from .btree import BTree, BTreeStats, NodeStore
from .dra import DRAFile, grow_by_copy
from .hdf5like import ChunkedBTreeFile
from .rowmajor import ConventionalArrayFile, ReorgStats

__all__ = [
    "BTree",
    "BTreeStats",
    "NodeStore",
    "ChunkedBTreeFile",
    "ConventionalArrayFile",
    "ReorgStats",
    "DRAFile",
    "grow_by_copy",
]
