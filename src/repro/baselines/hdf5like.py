"""The HDF5-style baseline: chunked array file with a B-tree chunk index.

Models the comparator format the paper discusses: "HDF5 ... stores
multi-dimensional arrays by chunking and allows for array extendibility
by managing the chunks with a B-tree index."

Behavioural essence reproduced:

* chunks are allocated **lazily on first write** and **appended** to the
  data file in write order (not index order!), so the file order depends
  on the application's touch order — a sub-array read generally hits
  scattered offsets even when the chunk indices are consecutive;
* every chunk access first walks the B-tree (counted node I/O through a
  bounded metadata cache), whereas DRX computes the address;
* extending a bound is a metadata-only change (HDF5 extension is cheap
  too — the paper's advantage is *not* extension cost vs HDF5, it is
  computed access and deterministic layout; E1/E4 measure both fairly).

The element-facing interface mirrors :class:`~repro.drx.drxfile.DRXFile`
(``read``/``write``/``extend``/``get``/``put``) so benchmarks can swap
implementations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.chunking import (
    box_shape,
    chunk_bounds_for,
    chunk_of,
    iter_box_intersections,
    validate_box,
)
from ..core.errors import DRXExtendError, DRXIndexError
from ..core.metadata import DRXType
from ..drx.storage import ByteStore, MemoryByteStore
from .btree import BTree

__all__ = ["ChunkedBTreeFile"]


class ChunkedBTreeFile:
    """An extendible chunked array indexed by a B-tree (HDF5 model)."""

    def __init__(self, bounds: Sequence[int], chunk_shape: Sequence[int],
                 dtype: str | np.dtype | type = DRXType.DOUBLE,
                 store: ByteStore | None = None,
                 btree_order: int = 16, cache_nodes: int = 64) -> None:
        self.element_bounds = tuple(int(b) for b in bounds)
        self.chunk_shape = tuple(int(c) for c in chunk_shape)
        # validates shapes the same way the DRX meta-data does
        chunk_bounds_for(self.element_bounds, self.chunk_shape)
        if isinstance(dtype, str):
            self.dtype = DRXType.to_numpy(dtype)
        else:
            self.dtype = np.dtype(dtype)
        self.store = store if store is not None else MemoryByteStore()
        self.index = BTree(order=btree_order, cache_nodes=cache_nodes)
        self._next_offset = 0
        self.chunk_elems = int(np.prod(self.chunk_shape))
        self.chunk_nbytes = self.chunk_elems * self.dtype.itemsize

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.element_bounds

    @property
    def rank(self) -> int:
        return len(self.element_bounds)

    @property
    def allocated_chunks(self) -> int:
        return len(self.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChunkedBTreeFile(shape={self.shape}, "
                f"chunks={self.chunk_shape}, "
                f"allocated={self.allocated_chunks})")

    # ------------------------------------------------------------------
    # growth: metadata only
    # ------------------------------------------------------------------
    def extend(self, dim: int, by: int) -> None:
        """Extend a bound: pure metadata (chunks appear on first write)."""
        if not 0 <= dim < self.rank:
            raise DRXExtendError(f"dimension {dim} outside rank {self.rank}")
        if by < 1:
            raise DRXExtendError(f"extension must be >= 1, got {by}")
        bounds = list(self.element_bounds)
        bounds[dim] += by
        self.element_bounds = tuple(bounds)

    # ------------------------------------------------------------------
    # chunk plumbing
    # ------------------------------------------------------------------
    def _chunk_offset(self, chunk_index: tuple[int, ...],
                      create: bool) -> int | None:
        """File offset of a chunk via the B-tree (counted lookups)."""
        off = self.index.get(chunk_index)
        if off is None and create:
            off = self._next_offset
            self._next_offset += self.chunk_nbytes
            self.index.put(chunk_index, off)
        return off

    def _load_chunk(self, chunk_index: tuple[int, ...]) -> np.ndarray:
        off = self._chunk_offset(chunk_index, create=False)
        if off is None:
            return np.zeros(self.chunk_shape, dtype=self.dtype)
        raw = self.store.read(off, self.chunk_nbytes)
        return np.frombuffer(bytearray(raw),
                             dtype=self.dtype).reshape(self.chunk_shape)

    def _store_chunk(self, chunk_index: tuple[int, ...],
                     payload: np.ndarray) -> None:
        off = self._chunk_offset(chunk_index, create=True)
        self.store.write(off, payload.tobytes())

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def get(self, index: Sequence[int]):
        self._check_element(index)
        ci, local = chunk_of(index, self.chunk_shape)
        return self._load_chunk(ci)[local].copy()

    def put(self, index: Sequence[int], value) -> None:
        self._check_element(index)
        ci, local = chunk_of(index, self.chunk_shape)
        payload = self._load_chunk(ci).copy()
        payload[local] = value
        self._store_chunk(ci, payload)

    def _check_element(self, index: Sequence[int]) -> None:
        if len(index) != self.rank:
            raise DRXIndexError(f"index rank {len(index)} != {self.rank}")
        for i, n in zip(index, self.shape):
            if not 0 <= i < n:
                raise DRXIndexError(
                    f"element {tuple(index)} outside bounds {self.shape}"
                )

    # ------------------------------------------------------------------
    # sub-array access
    # ------------------------------------------------------------------
    def read(self, lo: Sequence[int] | None = None,
             hi: Sequence[int] | None = None,
             order: str = "C") -> np.ndarray:
        lo = tuple(lo) if lo is not None else (0,) * self.rank
        hi = tuple(hi) if hi is not None else self.shape
        validate_box(lo, hi, self.shape)
        out = np.zeros(box_shape(lo, hi), dtype=self.dtype, order=order)
        for inter in iter_box_intersections(lo, hi, self.chunk_shape):
            payload = self._load_chunk(inter.chunk_index)
            out[inter.box_slices] = payload[inter.chunk_slices]
        return out

    def write(self, lo: Sequence[int], values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype)
        lo = tuple(lo)
        hi = tuple(l + s for l, s in zip(lo, values.shape))
        validate_box(lo, hi, self.shape)
        for inter in iter_box_intersections(lo, hi, self.chunk_shape):
            if inter.full:
                payload = np.ascontiguousarray(values[inter.box_slices],
                                               dtype=self.dtype)
            else:
                payload = self._load_chunk(inter.chunk_index).copy()
                payload[inter.chunk_slices] = values[inter.box_slices]
            self._store_chunk(inter.chunk_index, payload)

    def read_all(self, order: str = "C") -> np.ndarray:
        return self.read(None, None, order)
