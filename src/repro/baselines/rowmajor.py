"""The conventional-mapping baseline: a flat row-major array file.

Models NetCDF-style storage, the format family the paper's introduction
criticizes: elements mapped to "linear consecutive locations that
correspond to the linear ordering of the multi-dimensional indices".
Two limitations follow, and both are measurable here:

1. **One extendible dimension.**  Appending along dimension 0 (the
   record dimension) is a cheap file append; extending any *other*
   dimension changes every row-major coefficient and therefore the
   address of almost every element — :meth:`extend` then performs (and
   counts) a full reorganization pass.  Experiment E1.

2. **Order-dependent access cost.**  Reading a sub-array in the file's
   own order produces few long contiguous runs; reading the transposed
   order produces one tiny run per element row — the "abysmal
   performance" of column-major access to a row-major file.  The
   request/seek counters expose this.  Experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Sequence

import numpy as np

from ..core.chunking import box_shape, validate_box
from ..core.errors import DRXExtendError, DRXIndexError
from ..core.metadata import DRXType
from ..drx.storage import ByteStore, MemoryByteStore

__all__ = ["ConventionalArrayFile", "ReorgStats"]


@dataclass
class ReorgStats:
    """Cost of reorganizations performed by :meth:`extend`."""

    reorganizations: int = 0
    bytes_moved: int = 0
    elements_moved: int = 0


class ConventionalArrayFile:
    """A dense array stored flat in row-major element order."""

    def __init__(self, bounds: Sequence[int],
                 dtype: str | np.dtype | type = DRXType.DOUBLE,
                 store: ByteStore | None = None) -> None:
        self.element_bounds = tuple(int(b) for b in bounds)
        if any(b < 1 for b in self.element_bounds):
            raise DRXExtendError(f"bounds must be >= 1: {self.element_bounds}")
        if isinstance(dtype, str):
            self.dtype = DRXType.to_numpy(dtype)
        else:
            self.dtype = np.dtype(dtype)
        self.store = store if store is not None else MemoryByteStore()
        self.reorg_stats = ReorgStats()
        self.io_requests = 0
        self.io_bytes = 0
        self.store.truncate(self.nbytes)

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.element_bounds

    @property
    def rank(self) -> int:
        return len(self.element_bounds)

    @property
    def nelems(self) -> int:
        return prod(self.element_bounds)

    @property
    def nbytes(self) -> int:
        return self.nelems * self.dtype.itemsize

    def _coeffs(self, bounds: Sequence[int] | None = None) -> list[int]:
        bounds = bounds if bounds is not None else self.element_bounds
        k = len(bounds)
        c = [1] * k
        for j in range(k - 2, -1, -1):
            c[j] = c[j + 1] * bounds[j + 1]
        return c

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConventionalArrayFile(shape={self.shape})"

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def extend(self, dim: int, by: int) -> None:
        """Extend one dimension.

        ``dim == 0``: append zero bytes — the record-dimension fast path.
        ``dim != 0``: FULL REORGANIZATION — every element is re-addressed
        under the new coefficients, so the whole file is read and
        rewritten (counted in :attr:`reorg_stats`).
        """
        if not 0 <= dim < self.rank:
            raise DRXExtendError(f"dimension {dim} outside rank {self.rank}")
        if by < 1:
            raise DRXExtendError(f"extension must be >= 1, got {by}")
        if dim == 0:
            bounds = list(self.element_bounds)
            bounds[0] += by
            self.element_bounds = tuple(bounds)
            self.store.truncate(self.nbytes)
            return
        # reorganization: materialize, re-embed, rewrite
        old = self.read(None, None)
        bounds = list(self.element_bounds)
        bounds[dim] += by
        self.element_bounds = tuple(bounds)
        fresh = np.zeros(self.element_bounds, dtype=self.dtype)
        fresh[tuple(slice(0, s) for s in old.shape)] = old
        self.store.truncate(0)
        self.store.truncate(self.nbytes)
        self.store.write(0, fresh.tobytes())
        self.reorg_stats.reorganizations += 1
        self.reorg_stats.bytes_moved += old.nbytes + fresh.nbytes
        self.reorg_stats.elements_moved += old.size + fresh.size

    # ------------------------------------------------------------------
    # access runs
    # ------------------------------------------------------------------
    def _box_runs(self, lo: Sequence[int], hi: Sequence[int]
                  ) -> tuple[np.ndarray, int]:
        """Contiguous file runs covering the box, in row-major box order.

        Returns ``(start element offsets, run length in elements)``.
        Runs are rows along the last dimension — the fundamental
        contiguity unit of a row-major file.
        """
        coeffs = np.asarray(self._coeffs(), dtype=np.int64)
        shape = box_shape(lo, hi)
        run_len = shape[-1]
        outer = shape[:-1]
        if not outer:
            return (np.asarray([lo[0] if self.rank else 0],
                               dtype=np.int64) * coeffs[-1], run_len)
        grids = np.indices(outer, dtype=np.int64).reshape(len(outer), -1).T
        grids = grids + np.asarray(lo[:-1], dtype=np.int64)
        starts = grids @ coeffs[:-1] + lo[-1] * coeffs[-1]
        return starts, run_len

    def read(self, lo: Sequence[int] | None = None,
             hi: Sequence[int] | None = None,
             order: str = "C") -> np.ndarray:
        """Read a box.  The I/O counters record one request per
        contiguous run actually issued (adjacent runs merge)."""
        lo = tuple(lo) if lo is not None else (0,) * self.rank
        hi = tuple(hi) if hi is not None else self.shape
        validate_box(lo, hi, self.shape)
        starts, run_len = self._box_runs(lo, hi)
        item = self.dtype.itemsize
        tmp = np.empty(box_shape(lo, hi), dtype=self.dtype)  # C staging
        flat = tmp.reshape(-1)
        pos = 0
        i = 0
        n = len(starts)
        while i < n:
            # merge adjacent runs (a fully covered last-dim stretch)
            j = i
            while (j + 1 < n
                   and starts[j + 1] == starts[j] + run_len):
                j += 1
            nelem = (j - i + 1) * run_len
            raw = self.store.read(int(starts[i]) * item, nelem * item)
            self.io_requests += 1
            self.io_bytes += nelem * item
            flat[pos:pos + nelem] = np.frombuffer(raw, dtype=self.dtype)
            pos += nelem
            i = j + 1
        if order == "C":
            return tmp
        return np.asfortranarray(tmp)

    def write(self, lo: Sequence[int], values: np.ndarray) -> None:
        values = np.asarray(values, dtype=self.dtype)
        lo = tuple(lo)
        hi = tuple(l + s for l, s in zip(lo, values.shape))
        validate_box(lo, hi, self.shape)
        starts, run_len = self._box_runs(lo, hi)
        item = self.dtype.itemsize
        flat = np.ascontiguousarray(values).reshape(-1)
        pos = 0
        i = 0
        n = len(starts)
        while i < n:
            j = i
            while (j + 1 < n
                   and starts[j + 1] == starts[j] + run_len):
                j += 1
            nelem = (j - i + 1) * run_len
            self.store.write(int(starts[i]) * item,
                             flat[pos:pos + nelem].tobytes())
            self.io_requests += 1
            self.io_bytes += nelem * item
            pos += nelem
            i = j + 1

    def read_all(self, order: str = "C") -> np.ndarray:
        return self.read(None, None, order)

    def read_transposed_scan(self) -> np.ndarray:
        """Read the whole 2-D array column by column (the pathological
        access pattern of E2: each column is N tiny strided runs)."""
        if self.rank != 2:
            raise DRXIndexError("transposed scan demo is 2-D only")
        n0, n1 = self.shape
        out = np.empty((n1, n0), dtype=self.dtype)
        for j in range(n1):
            out[j, :] = self.read((0, j), (n0, j + 1))[:, 0]
        return out
