"""A disk-page B-tree: the chunk index of the HDF5-style baseline.

The paper contrasts its computed-access mapping with HDF5, which
"achieves extendibility through array chunking with the chunks indexed
by a B-Tree indexing method" and argues the computed access "is
equivalent to a hashing scheme" — i.e. O(k + log E) arithmetic on tiny
replicated meta-data instead of a node-by-node descent through an index
that lives on disk.

To make that comparison measurable, this B-tree stores its nodes through
a :class:`NodeStore` that counts node reads and writes and can bound the
number of nodes cached in memory (evicting clean/dirty nodes LRU like
HDF5's metadata cache).  Experiment E4 sweeps lookup cost against the
mapping function.

Keys are tuples of ints (chunk indices), ordered lexicographically —
exactly HDF5 v1 B-trees keyed by chunk offsets.  Values are arbitrary
(chunk file offsets here).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..core.errors import DRXError

__all__ = ["BTree", "NodeStore", "BTreeStats"]


@dataclass
class BTreeStats:
    """Node-level I/O counters of one B-tree."""

    node_reads: int = 0
    node_writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    splits: int = 0

    @property
    def node_ios(self) -> int:
        return self.node_reads + self.node_writes


class _Node:
    __slots__ = ("node_id", "leaf", "keys", "values", "children")

    def __init__(self, node_id: int, leaf: bool) -> None:
        self.node_id = node_id
        self.leaf = leaf
        self.keys: list[tuple] = []
        self.values: list[Any] = []        # leaf payloads
        self.children: list[int] = []      # internal child node ids


class NodeStore:
    """Backing store for B-tree nodes with an LRU cache of bounded size.

    Every access of a node not currently cached counts as one node read
    (a disk page fetch in HDF5 terms); every eviction of a dirty node
    counts as a node write.
    """

    def __init__(self, cache_nodes: int = 64) -> None:
        if cache_nodes < 4:
            raise DRXError("node cache must hold at least 4 nodes")
        self.cache_nodes = cache_nodes
        self.stats = BTreeStats()
        self._disk: dict[int, _Node] = {}
        self._cache: "OrderedDict[int, _Node]" = OrderedDict()
        self._next_id = 0

    def allocate(self, leaf: bool) -> _Node:
        node = _Node(self._next_id, leaf)
        self._next_id += 1
        self._disk[node.node_id] = node
        self._touch(node.node_id, node)
        return node

    def load(self, node_id: int) -> _Node:
        node = self._cache.get(node_id)
        if node is not None:
            self.stats.cache_hits += 1
            self._cache.move_to_end(node_id)
            return node
        self.stats.cache_misses += 1
        self.stats.node_reads += 1
        node = self._disk[node_id]
        self._touch(node_id, node)
        return node

    def mark_dirty(self, node: _Node) -> None:
        # nodes are stored by reference; a write is charged at eviction
        # time and at flush, mirroring a write-back metadata cache
        self._touch(node.node_id, node)

    def _touch(self, node_id: int, node: _Node) -> None:
        self._cache[node_id] = node
        self._cache.move_to_end(node_id)
        while len(self._cache) > self.cache_nodes:
            victim, _n = self._cache.popitem(last=False)
            self.stats.node_writes += 1
            del victim


class BTree:
    """An order-``m`` B-tree with counted node accesses."""

    def __init__(self, order: int = 16, cache_nodes: int = 64) -> None:
        if order < 4:
            raise DRXError(f"B-tree order must be >= 4, got {order}")
        self.order = order
        self.store = NodeStore(cache_nodes)
        self._root_id = self.store.allocate(leaf=True).node_id
        self._size = 0

    # ------------------------------------------------------------------
    @property
    def stats(self) -> BTreeStats:
        return self.store.stats

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        h = 1
        node = self.store.load(self._root_id)
        while not node.leaf:
            node = self.store.load(node.children[0])
            h += 1
        return h

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    @staticmethod
    def _find_slot(keys: list[tuple], key: tuple) -> int:
        """Index of the first key >= ``key`` (binary search)."""
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def get(self, key: Sequence[int], default: Any = None) -> Any:
        """Look up ``key``, descending from the root (counted node I/O)."""
        key = tuple(key)
        node = self.store.load(self._root_id)
        while not node.leaf:
            slot = self._find_slot(node.keys, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                slot += 1
            node = self.store.load(node.children[slot])
        slot = self._find_slot(node.keys, key)
        if slot < len(node.keys) and node.keys[slot] == key:
            return node.values[slot]
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------
    def put(self, key: Sequence[int], value: Any) -> None:
        """Insert or update ``key``."""
        key = tuple(key)
        root = self.store.load(self._root_id)
        if self._is_full(root):
            new_root = self.store.allocate(leaf=False)
            new_root.children.append(root.node_id)
            self._split_child(new_root, 0)
            self._root_id = new_root.node_id
            root = new_root
        inserted = self._insert_nonfull(root, key, value)
        if inserted:
            self._size += 1

    def _is_full(self, node: _Node) -> bool:
        return len(node.keys) >= self.order - 1

    def _split_child(self, parent: _Node, slot: int) -> None:
        self.stats.splits += 1
        child = self.store.load(parent.children[slot])
        mid = len(child.keys) // 2
        sibling = self.store.allocate(leaf=child.leaf)
        up_key = child.keys[mid]
        if child.leaf:
            # B+-tree style: the separator key stays in the right leaf
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
        else:
            sibling.keys = child.keys[mid + 1:]
            sibling.children = child.children[mid + 1:]
            child.keys = child.keys[:mid]
            child.children = child.children[:mid + 1]
        parent.keys.insert(slot, up_key)
        parent.children.insert(slot + 1, sibling.node_id)
        self.store.mark_dirty(parent)
        self.store.mark_dirty(child)
        self.store.mark_dirty(sibling)

    def _insert_nonfull(self, node: _Node, key: tuple, value: Any) -> bool:
        while True:
            slot = self._find_slot(node.keys, key)
            if node.leaf:
                if slot < len(node.keys) and node.keys[slot] == key:
                    node.values[slot] = value
                    self.store.mark_dirty(node)
                    return False
                node.keys.insert(slot, key)
                node.values.insert(slot, value)
                self.store.mark_dirty(node)
                return True
            if slot < len(node.keys) and node.keys[slot] == key:
                slot += 1
            child = self.store.load(node.children[slot])
            if self._is_full(child):
                self._split_child(node, slot)
                if key >= node.keys[slot]:
                    child = self.store.load(node.children[slot + 1])
            node = child

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[tuple, Any]]:
        """All (key, value) pairs in key order."""
        yield from self._iter_node(self._root_id)

    def _iter_node(self, node_id: int) -> Iterator[tuple[tuple, Any]]:
        node = self.store.load(node_id)
        if node.leaf:
            yield from zip(node.keys, node.values)
            return
        for i, child in enumerate(node.children):
            yield from self._iter_node(child)
            # internal keys are separators only (B+ leaves hold the data)

    def keys(self) -> Iterator[tuple]:
        for k, _v in self.items():
            yield k
