"""The DRX-MP public API: parallel out-of-core extendible arrays.

The object-style interface is :class:`DRXMPFile`; thin wrappers named
after the paper's C prototypes (``DRXMP_Init``, ``DRXMP_Open``,
``DRXMP_Close``, ``DRXMP_Terminate``, ``DRXMP_Read``, ``DRXMP_Read_all``,
``DRXMP_Write``, ``DRXMP_Write_all``, ``DRXMP_Extend``) are provided at
the bottom so the paper's programming examples translate directly.

File layout, as in the paper's section IV: an array named ``xyz`` is the
pair ``xyz.xmd`` (meta-data) / ``xyz.xta`` (chunk payloads) on the
parallel file system; on open, the meta-data content is replicated into
every participating process, so each process computes chunk addresses
and zone ownership locally.

All lifecycle operations (create/open/extend/close) are collective over
the handle's communicator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.errors import (
    DRXExtendError,
    DRXFileError,
    DRXFileExistsError,
    DRXFileNotFoundError,
)
from ..core.metadata import DRXMeta, DRXType
from ..mpi import file as mpiio
from ..mpi.comm import Intracomm
from ..pfs.filesystem import ParallelFileSystem
from .handles import DRXMDHdl, DRXMDMemHdl
from .partition import BlockCyclicPartition, BlockPartition, Zone
from .subarray import box_read, box_write, zone_read, zone_write

__all__ = ["DRXMPFile",
           "DRXMP_Init", "DRXMP_Open", "DRXMP_Close", "DRXMP_Terminate",
           "DRXMP_Read", "DRXMP_Read_all", "DRXMP_Write", "DRXMP_Write_all",
           "DRXMP_Extend"]

XMD_SUFFIX = ".xmd"
XTA_SUFFIX = ".xta"

import threading as _threading

#: per-rank (= per-thread) registry of open handles, for DRXMP_Terminate()
_LOCAL = _threading.local()


def _open_handles() -> list["DRXMPFile"]:
    if not hasattr(_LOCAL, "handles"):
        _LOCAL.handles = []
    return _LOCAL.handles


class DRXMPFile:
    """A parallel disk-resident extendible array (collective handle)."""

    def __init__(self, handle: DRXMDHdl,
                 fs: ParallelFileSystem) -> None:
        self._h = handle
        self._fs = fs
        _open_handles().append(self)

    # ------------------------------------------------------------------
    # lifecycle (collective)
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, comm: Intracomm, fs: ParallelFileSystem, name: str,
               bounds: Sequence[int], chunk_shape: Sequence[int],
               dtype: str | np.dtype | type = DRXType.DOUBLE,
               info: dict | None = None) -> "DRXMPFile":
        """Collectively create a new principal array on ``fs``.

        This is the paper's ``DRXMP_Init``: every process receives its
        meta-data handle; rank 0 materializes the file pair.  ``info``
        carries MPI-IO hints down to the payload file (e.g.
        ``{"cb_nodes": 2}`` — see DESIGN.md §5f).
        """
        spec = comm.allgather((name, tuple(bounds), tuple(chunk_shape)))
        if any(s != spec[0] for s in spec):
            raise DRXFileError(f"create arguments differ across ranks: {spec}")
        err = None
        if comm.rank == 0:
            if fs.exists(name + XMD_SUFFIX) or fs.exists(name + XTA_SUFFIX):
                err = f"array {name!r} already exists"
            else:
                meta0 = DRXMeta.create(bounds, chunk_shape, dtype)
                xmd = fs.create(name + XMD_SUFFIX)
                xmd.write(0, meta0.to_bytes())
                xta = fs.create(name + XTA_SUFFIX)
                xta.set_size(meta0.data_nbytes)
        err = comm.bcast(err)
        if err:
            raise DRXFileExistsError(err)
        return cls._attach(comm, fs, name, "r+", info=info)

    @classmethod
    def open(cls, comm: Intracomm, fs: ParallelFileSystem, name: str,
             mode: str = "r", info: dict | None = None) -> "DRXMPFile":
        """Collectively open an existing array (paper: ``DRXMP_Open``).

        "The file must exist otherwise it returns an error."
        """
        if mode not in ("r", "r+"):
            raise DRXFileError(f"mode must be 'r' or 'r+', got {mode!r}")
        err = None
        if comm.rank == 0 and not (fs.exists(name + XMD_SUFFIX)
                                   and fs.exists(name + XTA_SUFFIX)):
            err = f"no array named {name!r}"
        err = comm.bcast(err)
        if err:
            raise DRXFileNotFoundError(err)
        return cls._attach(comm, fs, name, mode, info=info)

    @classmethod
    def _attach(cls, comm: Intracomm, fs: ParallelFileSystem, name: str,
                mode: str, info: dict | None = None) -> "DRXMPFile":
        # replicate the meta-data into every process
        blob = None
        if comm.rank == 0:
            xmd = fs.open(name + XMD_SUFFIX)
            blob = xmd.read(0, xmd.size)
        blob = comm.bcast(blob)
        meta = DRXMeta.from_bytes(blob)
        amode = mpiio.MODE_RDONLY if mode == "r" else mpiio.MODE_RDWR
        fh = mpiio.File.Open(comm, name + XTA_SUFFIX, amode, fs, info=info)
        handle = DRXMDHdl(name=name, comm=comm, meta=meta,
                          data_file=fh, mode=mode)
        return cls(handle, fs)

    def close(self) -> None:
        """Collective close (paper: ``DRXMP_Close``); idempotent."""
        if self._h.closed:
            return
        self._h.data_file.Close()
        self._h.closed = True
        if self in _open_handles():
            _open_handles().remove(self)

    def __enter__(self) -> "DRXMPFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def meta(self) -> DRXMeta:
        return self._h.meta

    @property
    def comm(self) -> Intracomm:
        return self._h.comm

    @property
    def shape(self) -> tuple[int, ...]:
        return self._h.meta.element_bounds

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        return self._h.meta.chunk_shape

    @property
    def dtype(self) -> np.dtype:
        return self._h.meta.dtype

    @property
    def handle(self) -> DRXMDHdl:
        return self._h

    @property
    def attrs(self):
        """User attributes of the local replica.

        Collective convention: set attributes identically on all ranks,
        then call :meth:`flush_attrs` (rank 0 persists).
        """
        return self._h.meta.attrs

    def set_info(self, info: dict | None) -> None:
        """Merge MPI-IO hints into the payload file (collective
        configuration: set the same values on every rank)."""
        self._h.require_open()
        self._h.data_file.Set_info(info)

    def get_info(self) -> dict:
        """The payload file's effective MPI-IO hints."""
        return self._h.data_file.Get_info()

    def flush_attrs(self) -> None:
        """Collectively persist attributes (meta-data rewrite by rank 0)."""
        self._h.require_open()
        self._require_writable()
        blobs = self.comm.allgather(self._h.meta.to_bytes())
        if any(b != blobs[0] for b in blobs):
            raise DRXFileError(
                "attribute flush with diverged replicas; set attributes "
                "identically on every rank"
            )
        if self.comm.rank == 0:
            xmd = self._fs.open(self._h.name + XMD_SUFFIX)
            xmd.set_size(0)
            xmd.write(0, blobs[0])
        self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DRXMPFile({self._h.name!r}, shape={self.shape}, "
                f"chunks={self.chunk_shape}, nprocs={self._h.nprocs})")

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    def partition(self, kind: str = "block",
                  block: Sequence[int] | int = 1,
                  pgrid: Sequence[int] | None = None):
        """The default load-balanced partition of the *current* chunk
        grid over the handle's processes.

        Recompute after every :meth:`extend` — growth changes the zones.
        """
        if kind == "block":
            return BlockPartition(self._h.meta.chunk_bounds,
                                  self._h.nprocs, pgrid)
        if kind == "block_cyclic":
            return BlockCyclicPartition(self._h.meta.chunk_bounds,
                                        self._h.nprocs, block, pgrid)
        raise DRXFileError(f"unknown partition kind {kind!r}")

    def my_zone(self, partition=None) -> Zone:
        partition = partition or self.partition()
        return partition.zone_of(self._h.rank)

    # ------------------------------------------------------------------
    # collective zone I/O (the primary access path)
    # ------------------------------------------------------------------
    def read_zone(self, partition=None, order: str = "C",
                  collective: bool = True,
                  into: DRXMDMemHdl | None = None) -> DRXMDMemHdl:
        """Read this process's zone (paper: ``DRXMP_Read_all`` /
        ``DRXMP_Read``), returning a memory handle whose array is in the
        requested conventional order.

        ``into`` refreshes an existing memory handle in place (the
        paper's C API passes the memhdl as a parameter); its zone and
        buffer shape must still match the current array bounds.
        """
        self._h.require_open()
        zone = self.my_zone(partition) if into is None else into.zone
        use_order = order if into is None else into.order
        arr = zone_read(self._h.data_file, self._h.meta, zone,
                        order=use_order, collective=collective)
        lo, _hi = zone.element_box(self.chunk_shape, self.shape)
        if into is not None:
            if tuple(into.array.shape) != tuple(arr.shape):
                raise DRXFileError(
                    f"memory handle shape {tuple(into.array.shape)} no "
                    f"longer matches zone box {tuple(arr.shape)} "
                    f"(did the array grow?)"
                )
            into.array[...] = arr
            into.origin = lo
            return into
        return DRXMDMemHdl(array=arr, zone=zone, order=order, origin=lo)

    def write_zone(self, memhdl: DRXMDMemHdl,
                   collective: bool = True) -> None:
        """Write this process's zone back (paper: ``DRXMP_Write_all`` /
        ``DRXMP_Write``)."""
        self._h.require_open()
        self._require_writable()
        zone_write(self._h.data_file, self._h.meta, memhdl.zone,
                   memhdl.array, collective=collective)

    # ------------------------------------------------------------------
    # independent box I/O (any rank, any rectilinear region)
    # ------------------------------------------------------------------
    def read(self, lo: Sequence[int], hi: Sequence[int],
             order: str = "C") -> np.ndarray:
        """Independent read of an arbitrary element box."""
        self._h.require_open()
        return box_read(self._h.data_file, self._h.meta, lo, hi,
                        order=order, collective=False)

    def write(self, lo: Sequence[int], values: np.ndarray) -> None:
        """Independent write of an arbitrary element box."""
        self._h.require_open()
        self._require_writable()
        box_write(self._h.data_file, self._h.meta, lo, values,
                  collective=False)

    def _require_writable(self) -> None:
        if self._h.mode == "r":
            raise DRXFileError(f"array {self._h.name!r} opened read-only")

    # ------------------------------------------------------------------
    # growth (collective)
    # ------------------------------------------------------------------
    def extend(self, dim: int, by: int) -> None:
        """Collectively extend dimension ``dim`` by ``by`` elements.

        Every replica applies the identical extension, so the meta-data
        stays consistent across processes without communication of the
        axial vectors themselves; rank 0 persists the new meta-data.
        Previously allocated chunks never move.
        """
        self._h.require_open()
        self._require_writable()
        spec = self.comm.allgather((int(dim), int(by),
                                    self._h.meta.eci.generation))
        if any(s != spec[0] for s in spec):
            raise DRXExtendError(
                f"extend arguments/generation differ across ranks: {spec}"
            )
        self._h.meta.extend_elements(dim, by)
        self._h.data_file.Set_size(self._h.meta.data_nbytes)
        if self.comm.rank == 0:
            xmd = self._fs.open(self._h.name + XMD_SUFFIX)
            blob = self._h.meta.to_bytes()
            xmd.set_size(0)
            xmd.write(0, blob)
        self.comm.barrier()


# ---------------------------------------------------------------------------
# paper-style function aliases
# ---------------------------------------------------------------------------

def DRXMP_Init(comm: Intracomm, fs: ParallelFileSystem, name: str,
               kdim: int, initsize: Sequence[int],
               chkshape: Sequence[int],
               dtype: str = DRXType.DOUBLE,
               info: dict | None = None) -> DRXMPFile:
    """``int DRXMP_Init(DRXMDHdl*, int kdim, size_t *initsize,
    int *chkshape, DRXType dtype, DRXComm comm)`` — collective creation;
    "gives each process access to their respective meta-data handle"."""
    if len(initsize) != kdim or len(chkshape) != kdim:
        raise DRXExtendError(
            f"kdim={kdim} but initsize has {len(initsize)} and chkshape "
            f"has {len(chkshape)} entries"
        )
    return DRXMPFile.create(comm, fs, name, initsize, chkshape, dtype,
                            info=info)


def DRXMP_Open(comm: Intracomm, fs: ParallelFileSystem, name: str,
               mode: str = "r", info: dict | None = None) -> DRXMPFile:
    """``int DRXMP_Open(DRXMDHdl*, char *filename, char *mode)``."""
    return DRXMPFile.open(comm, fs, name, mode, info=info)


def DRXMP_Close(drxhdl: DRXMPFile) -> None:
    """``int DRXMP_Close(DRXMDHdl drxhdl)``."""
    drxhdl.close()


def DRXMP_Terminate() -> None:
    """``int DRXMP_Terminate()`` — closes all opened extendible arrays
    and frees the DRX-MP allocated structures."""
    for f in list(_open_handles()):
        f.close()


def DRXMP_Read(drxhdl: DRXMPFile, partition=None,
               order: str = "C") -> DRXMDMemHdl:
    """Independent zone read (``int DRXMP_Read(...)``)."""
    return drxhdl.read_zone(partition, order=order, collective=False)


def DRXMP_Read_all(drxhdl: DRXMPFile, partition=None,
                   order: str = "C") -> DRXMDMemHdl:
    """Collective zone read (``int DRXMP_Read_all(...)``)."""
    return drxhdl.read_zone(partition, order=order, collective=True)


def DRXMP_Write(drxhdl: DRXMPFile, memhdl: DRXMDMemHdl) -> None:
    """Independent zone write."""
    drxhdl.write_zone(memhdl, collective=False)


def DRXMP_Write_all(drxhdl: DRXMPFile, memhdl: DRXMDMemHdl) -> None:
    """Collective zone write."""
    drxhdl.write_zone(memhdl, collective=True)


def DRXMP_Extend(drxhdl: DRXMPFile, dim: int, by: int) -> None:
    """Collective extension of one dimension by ``by`` elements."""
    drxhdl.extend(dim, by)
