"""Zone partitioning: distributing the principal array over processes.

The paper (section II-A): "the entire array file is partitioned into
disjoint rectilinear regions where each region is composed of a set of
adjacent connected chunks referred to as a zone.  Each process is then
assigned a zone of the array where it becomes the primary owner. ...
Partitioning and distributing the array chunks onto processes is always
along chunk boundaries."

Two distributions are provided, mirroring the HPF-style distributions
the paper discusses (section V plans BLOCK_CYCLIC as the generalization;
Panda's distributions are the model):

* :class:`BlockPartition` — the default: a process grid, each process
  owning one contiguous rectilinear box of chunks (the Fig. 1 zones);
* :class:`BlockCyclicPartition` — BLOCK_CYCLIC(k): blocks of ``k`` chunk
  indices per dimension dealt round-robin to the process grid, giving
  each process a union of small boxes (better balance under skewed
  growth — experiment E6).

Every process holds the full replicated meta-data, so ``owner_of`` is a
pure local computation on any rank — this is how remote element access
finds the owning process.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Sequence

import numpy as np

from ..core.chunking import ceil_div
from ..core.errors import DRXDistributionError

__all__ = ["Zone", "BlockPartition", "BlockCyclicPartition", "dims_create"]


def dims_create(nprocs: int, ndims: int) -> tuple[int, ...]:
    """A balanced process grid (MPI_Dims_create analogue).

    Factorizes ``nprocs`` into ``ndims`` factors as close to each other
    as possible, larger factors first.
    """
    if nprocs < 1 or ndims < 1:
        raise DRXDistributionError(
            f"need nprocs >= 1 and ndims >= 1, got {nprocs}, {ndims}"
        )
    dims = [1] * ndims
    remaining = nprocs
    # repeatedly peel the largest prime factor onto the smallest dim
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return tuple(sorted(dims, reverse=True))


@dataclass(frozen=True)
class Zone:
    """A rectilinear box of chunks owned by one process.

    ``lo``/``hi`` are half-open chunk-index bounds.
    """

    rank: int
    lo: tuple[int, ...]
    hi: tuple[int, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def num_chunks(self) -> int:
        return prod(self.shape)

    @property
    def empty(self) -> bool:
        return any(h <= l for l, h in zip(self.lo, self.hi))

    def contains(self, chunk_index: Sequence[int]) -> bool:
        return all(l <= i < h
                   for i, l, h in zip(chunk_index, self.lo, self.hi))

    def chunk_indices(self) -> np.ndarray:
        """All chunk indices of the zone, row-major, as ``(m, k)`` int64."""
        if self.empty:
            return np.empty((0, len(self.lo)), dtype=np.int64)
        grids = np.indices(self.shape, dtype=np.int64)
        flat = grids.reshape(len(self.lo), -1).T
        return flat + np.asarray(self.lo, dtype=np.int64)

    def element_box(self, chunk_shape: Sequence[int],
                    element_bounds: Sequence[int]
                    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The element-space box this zone covers, clipped to bounds.

        An empty zone (more processes than chunks along a dimension)
        yields a consistent empty box with ``lo == hi`` — never a
        negative extent, even when the zone sits past the element
        bounds entirely.
        """
        hi = tuple(min(h * c, n) for h, c, n
                   in zip(self.hi, chunk_shape, element_bounds))
        lo = tuple(min(l * c, h) for l, c, h
                   in zip(self.lo, chunk_shape, hi))
        return lo, hi


class BlockPartition:
    """BLOCK distribution: one contiguous chunk box per process."""

    name = "BLOCK"

    def __init__(self, chunk_bounds: Sequence[int], nprocs: int,
                 pgrid: Sequence[int] | None = None) -> None:
        self.chunk_bounds = tuple(int(b) for b in chunk_bounds)
        k = len(self.chunk_bounds)
        if pgrid is None:
            pgrid = dims_create(nprocs, k)
        self.pgrid = tuple(int(p) for p in pgrid)
        if prod(self.pgrid) != nprocs:
            raise DRXDistributionError(
                f"process grid {self.pgrid} does not hold {nprocs} processes"
            )
        if len(self.pgrid) != k:
            raise DRXDistributionError(
                f"process grid rank {len(self.pgrid)} != array rank {k}"
            )
        self.nprocs = nprocs
        # per-dimension split points: dimension d of extent N over P
        # procs -> first (N % P) procs get ceil(N/P), the rest floor.
        self._splits: list[np.ndarray] = []
        for n, p in zip(self.chunk_bounds, self.pgrid):
            base, extra = divmod(n, p)
            sizes = np.full(p, base, dtype=np.int64)
            sizes[:extra] += 1
            cuts = np.zeros(p + 1, dtype=np.int64)
            np.cumsum(sizes, out=cuts[1:])
            self._splits.append(cuts)

    # ------------------------------------------------------------------
    def coords_of_rank(self, rank: int) -> tuple[int, ...]:
        """Row-major process-grid coordinates of ``rank``."""
        if not 0 <= rank < self.nprocs:
            raise DRXDistributionError(f"rank {rank} outside {self.nprocs}")
        out = []
        for p in reversed(self.pgrid):
            rank, c = divmod(rank, p)
            out.append(c)
        return tuple(reversed(out))

    def rank_of_coords(self, coords: Sequence[int]) -> int:
        r = 0
        for c, p in zip(coords, self.pgrid):
            r = r * p + c
        return r

    def zone_of(self, rank: int) -> Zone:
        coords = self.coords_of_rank(rank)
        lo = tuple(int(self._splits[d][c]) for d, c in enumerate(coords))
        hi = tuple(int(self._splits[d][c + 1]) for d, c in enumerate(coords))
        return Zone(rank, lo, hi)

    def zones(self) -> list[Zone]:
        return [self.zone_of(r) for r in range(self.nprocs)]

    def chunks_of(self, rank: int) -> np.ndarray:
        return self.zone_of(rank).chunk_indices()

    def owner_of(self, chunk_index: Sequence[int]) -> int:
        """Rank owning one chunk (pure local computation)."""
        coords = []
        for d, i in enumerate(chunk_index):
            if not 0 <= i < self.chunk_bounds[d]:
                raise DRXDistributionError(
                    f"chunk {tuple(chunk_index)} outside bounds "
                    f"{self.chunk_bounds}"
                )
            c = int(np.searchsorted(self._splits[d], i, side="right")) - 1
            coords.append(min(c, self.pgrid[d] - 1))
        return self.rank_of_coords(coords)

    def owners_of(self, chunk_indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner_of` over ``(m, k)`` chunk indices."""
        idx = np.asarray(chunk_indices, dtype=np.int64)
        ranks = np.zeros(idx.shape[0], dtype=np.int64)
        for d, p in enumerate(self.pgrid):
            c = np.searchsorted(self._splits[d], idx[:, d],
                                side="right") - 1
            c = np.minimum(c, p - 1)
            ranks = ranks * p + c
        return ranks

    def chunk_counts(self) -> list[int]:
        """Chunks per rank — the balance metric of experiment E6."""
        return [self.zone_of(r).num_chunks for r in range(self.nprocs)]


class BlockCyclicPartition:
    """BLOCK_CYCLIC(k) distribution over a process grid.

    Dimension ``d`` is cut into blocks of ``block[d]`` chunk indices;
    block ``b`` of dimension ``d`` belongs to process-grid coordinate
    ``b % pgrid[d]``.  A process's holding is the cartesian product of
    its per-dimension block unions.
    """

    name = "BLOCK_CYCLIC"

    def __init__(self, chunk_bounds: Sequence[int], nprocs: int,
                 block: Sequence[int] | int = 1,
                 pgrid: Sequence[int] | None = None) -> None:
        self.chunk_bounds = tuple(int(b) for b in chunk_bounds)
        k = len(self.chunk_bounds)
        if pgrid is None:
            pgrid = dims_create(nprocs, k)
        self.pgrid = tuple(int(p) for p in pgrid)
        if prod(self.pgrid) != nprocs or len(self.pgrid) != k:
            raise DRXDistributionError(
                f"bad process grid {self.pgrid} for {nprocs} procs rank {k}"
            )
        self.nprocs = nprocs
        if isinstance(block, int):
            block = [block] * k
        self.block = tuple(int(b) for b in block)
        if any(b < 1 for b in self.block):
            raise DRXDistributionError(f"block sizes must be >= 1: {self.block}")

    # ------------------------------------------------------------------
    def coords_of_rank(self, rank: int) -> tuple[int, ...]:
        out = []
        for p in reversed(self.pgrid):
            rank, c = divmod(rank, p)
            out.append(c)
        return tuple(reversed(out))

    def rank_of_coords(self, coords: Sequence[int]) -> int:
        r = 0
        for c, p in zip(coords, self.pgrid):
            r = r * p + c
        return r

    def zone_of(self, rank: int) -> "Zone":
        """Not available: a BLOCK_CYCLIC holding is a union of boxes.

        Use :meth:`boxes_of` / :meth:`chunks_of`, or access the array
        through :class:`~repro.drxmp.ga.GlobalArray` (which works with
        any partition exposing ``chunks_of``/``owner_of``).
        """
        raise DRXDistributionError(
            "BLOCK_CYCLIC holdings are not a single rectilinear zone; "
            "use boxes_of()/chunks_of() or a GlobalArray"
        )

    def _dim_indices(self, d: int, coord: int) -> np.ndarray:
        """Chunk indices along dimension ``d`` owned by grid coord."""
        n, p, b = self.chunk_bounds[d], self.pgrid[d], self.block[d]
        blocks = np.arange(coord, ceil_div(n, b), p, dtype=np.int64)
        idx = (blocks[:, None] * b + np.arange(b, dtype=np.int64)).ravel()
        return idx[idx < n]

    def chunks_of(self, rank: int) -> np.ndarray:
        """All chunk indices owned by ``rank``, row-major, ``(m, k)``."""
        coords = self.coords_of_rank(rank)
        per_dim = [self._dim_indices(d, c) for d, c in enumerate(coords)]
        if any(ix.size == 0 for ix in per_dim):
            return np.empty((0, len(per_dim)), dtype=np.int64)
        mesh = np.meshgrid(*per_dim, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=1)

    def boxes_of(self, rank: int) -> list[Zone]:
        """The holding of ``rank`` as a union of rectilinear boxes."""
        coords = self.coords_of_rank(rank)
        per_dim_blocks: list[list[tuple[int, int]]] = []
        for d, c in enumerate(coords):
            n, p, b = self.chunk_bounds[d], self.pgrid[d], self.block[d]
            spans = []
            for blk in range(c, ceil_div(n, b), p):
                lo = blk * b
                hi = min(lo + b, n)
                spans.append((lo, hi))
            per_dim_blocks.append(spans)
        boxes: list[Zone] = []
        def rec(d: int, lo: list[int], hi: list[int]) -> None:
            if d == len(per_dim_blocks):
                boxes.append(Zone(rank, tuple(lo), tuple(hi)))
                return
            for l, h in per_dim_blocks[d]:
                rec(d + 1, lo + [l], hi + [h])
        rec(0, [], [])
        return boxes

    def owner_of(self, chunk_index: Sequence[int]) -> int:
        coords = []
        for d, i in enumerate(chunk_index):
            if not 0 <= i < self.chunk_bounds[d]:
                raise DRXDistributionError(
                    f"chunk {tuple(chunk_index)} outside bounds "
                    f"{self.chunk_bounds}"
                )
            coords.append((i // self.block[d]) % self.pgrid[d])
        return self.rank_of_coords(coords)

    def owners_of(self, chunk_indices: np.ndarray) -> np.ndarray:
        idx = np.asarray(chunk_indices, dtype=np.int64)
        ranks = np.zeros(idx.shape[0], dtype=np.int64)
        for d, p in enumerate(self.pgrid):
            c = (idx[:, d] // self.block[d]) % p
            ranks = ranks * p + c
        return ranks

    def chunk_counts(self) -> list[int]:
        return [self.chunks_of(r).shape[0] for r in range(self.nprocs)]
