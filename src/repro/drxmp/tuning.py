"""Chunk-shape tuning: reconciling chunk size with the stripe size.

The paper's final future-work item: "Optimizing the access by
reconciling the chunk size with the strip size of the parallel file
system for optimal chunk accesses."  Experiment E5 measures the effect;
this module turns the measurement into advice a user can apply at
creation time.

Heuristics implemented (validated by E5's cost curve):

* a chunk should not *cross* stripes it doesn't fill: chunks at most one
  stripe large are serviced by a single server request;
* larger chunks amortize per-request overhead, so aim just *below* the
  stripe size rather than far below it;
* dimensions expected to grow should get small chunk extents (growth
  granularity = one chunk along that dimension), scan-heavy dimensions
  large extents (fewer chunks per scan line).
"""

from __future__ import annotations

from math import prod
from typing import Sequence

import numpy as np

from ..core.errors import DRXExtendError
from ..core.metadata import DRXType

__all__ = ["suggest_chunk_shape", "chunk_stripe_report"]


def suggest_chunk_shape(element_shape: Sequence[int],
                        stripe_size: int,
                        dtype: str | np.dtype | type = DRXType.DOUBLE,
                        growth_dims: Sequence[int] = (),
                        fill: float = 0.9) -> tuple[int, ...]:
    """A chunk shape whose payload is ~``fill`` of one stripe.

    Parameters
    ----------
    element_shape:
        Expected working bounds (used to cap chunk extents).
    stripe_size:
        The PFS stripe size in bytes.
    dtype:
        Element type (sets the item size).
    growth_dims:
        Dimensions expected to be extended repeatedly; their chunk
        extent is kept small so each extension adjoins little padding.
    fill:
        Target fraction of a stripe one chunk should occupy (0 < fill
        <= 1).  The default 0.9 leaves headroom so a chunk never
        straddles two stripes.
    """
    if not 0 < fill <= 1:
        raise DRXExtendError(f"fill must be in (0, 1], got {fill}")
    if stripe_size < 1:
        raise DRXExtendError(f"stripe size must be positive, got "
                             f"{stripe_size}")
    if isinstance(dtype, str):
        itemsize = DRXType.to_numpy(dtype).itemsize
    else:
        itemsize = np.dtype(dtype).itemsize
    k = len(element_shape)
    if k == 0 or any(s < 1 for s in element_shape):
        raise DRXExtendError(f"bad element shape {tuple(element_shape)}")
    budget_elems = max(1, int(stripe_size * fill) // itemsize)

    growth = set(growth_dims)
    for d in growth:
        if not 0 <= d < k:
            raise DRXExtendError(f"growth dim {d} outside rank {k}")

    chunk = [1] * k
    # growth dims get a small fixed extent (a few indices per extension)
    for d in growth:
        chunk[d] = min(4, element_shape[d])
    # distribute the remaining budget over the scan dims, last dim first
    # (row-major: the last dimension is the contiguity direction)
    scan_dims = [d for d in range(k - 1, -1, -1) if d not in growth]
    for d in scan_dims:
        have = prod(chunk)
        if have >= budget_elems:
            break
        room = budget_elems // have
        chunk[d] = min(element_shape[d], max(1, room))
    # final safety: never exceed the stripe
    while prod(chunk) * itemsize > stripe_size and max(chunk) > 1:
        d = int(np.argmax(chunk))
        chunk[d] = max(1, chunk[d] // 2)
    return tuple(chunk)


def chunk_stripe_report(chunk_shape: Sequence[int], stripe_size: int,
                        dtype: str | np.dtype | type = DRXType.DOUBLE
                        ) -> dict:
    """Quantify how a chunk shape interacts with the stripe size.

    Returns a dict with the chunk payload size, the chunk/stripe ratio,
    and the worst-case number of server requests a single chunk access
    costs (the E5 metric).
    """
    if isinstance(dtype, str):
        itemsize = DRXType.to_numpy(dtype).itemsize
    else:
        itemsize = np.dtype(dtype).itemsize
    nbytes = prod(chunk_shape) * itemsize
    ratio = nbytes / stripe_size
    # an unaligned chunk can touch ceil(ratio) + 1 stripes
    worst_requests = int(np.ceil(ratio)) + (1 if nbytes % stripe_size else 0)
    return {
        "chunk_nbytes": nbytes,
        "stripe_size": stripe_size,
        "ratio": ratio,
        "worst_case_requests": max(1, worst_requests),
        "fits_one_stripe": nbytes <= stripe_size,
    }
