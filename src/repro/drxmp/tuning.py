"""Chunk-shape tuning: reconciling chunk size with the stripe size.

The paper's final future-work item: "Optimizing the access by
reconciling the chunk size with the strip size of the parallel file
system for optimal chunk accesses."  Experiment E5 measures the effect;
this module turns the measurement into advice a user can apply at
creation time.

Heuristics implemented (validated by E5's cost curve):

* a chunk should not *cross* stripes it doesn't fill: chunks at most one
  stripe large are serviced by a single server request;
* larger chunks amortize per-request overhead, so aim just *below* the
  stripe size rather than far below it;
* dimensions expected to grow should get small chunk extents (growth
  granularity = one chunk along that dimension), scan-heavy dimensions
  large extents (fewer chunks per scan line).
"""

from __future__ import annotations

from math import prod
from typing import Sequence

import numpy as np

from ..core.errors import DRXExtendError
from ..core.metadata import DRXType

__all__ = ["suggest_chunk_shape", "chunk_stripe_report"]


def suggest_chunk_shape(element_shape: Sequence[int],
                        stripe_size: int,
                        dtype: str | np.dtype | type = DRXType.DOUBLE,
                        growth_dims: Sequence[int] = (),
                        fill: float = 0.9) -> tuple[int, ...]:
    """A chunk shape whose payload is ~``fill`` of one stripe.

    Parameters
    ----------
    element_shape:
        Expected working bounds (used to cap chunk extents).
    stripe_size:
        The PFS stripe size in bytes.
    dtype:
        Element type (sets the item size).
    growth_dims:
        Dimensions expected to be extended repeatedly; their chunk
        extent is kept small so each extension adjoins little padding.
    fill:
        Target fraction of a stripe one chunk should occupy (0 < fill
        <= 1).  The default 0.9 leaves headroom so a chunk never
        straddles two stripes.
    """
    if not 0 < fill <= 1:
        raise DRXExtendError(f"fill must be in (0, 1], got {fill}")
    if stripe_size < 1:
        raise DRXExtendError(f"stripe size must be positive, got "
                             f"{stripe_size}")
    if isinstance(dtype, str):
        itemsize = DRXType.to_numpy(dtype).itemsize
    else:
        itemsize = np.dtype(dtype).itemsize
    k = len(element_shape)
    if k == 0 or any(s < 1 for s in element_shape):
        raise DRXExtendError(f"bad element shape {tuple(element_shape)}")
    budget_elems = max(1, int(stripe_size * fill) // itemsize)

    growth = set(growth_dims)
    for d in growth:
        if not 0 <= d < k:
            raise DRXExtendError(f"growth dim {d} outside rank {k}")

    chunk = [1] * k
    # growth dims get a small fixed extent (a few indices per extension)
    for d in growth:
        chunk[d] = min(4, element_shape[d])
    # distribute the remaining budget over the scan dims, last dim first
    # (row-major: the last dimension is the contiguity direction).  When
    # the item size divides the stripe, budget-limited extents are
    # snapped down to powers of two so the chunk payload divides the
    # stripe — a chunk that tiles stripes exactly never straddles a
    # boundary (1 server request instead of 2; see
    # :func:`chunk_stripe_report`).  Bounds-capped extents keep the
    # exact bound (matching the array matters more than alignment), and
    # non-power-of-two item sizes skip the snap (no extent can make the
    # payload divide a power-of-two stripe anyway).
    snap = stripe_size % itemsize == 0
    scan_dims = [d for d in range(k - 1, -1, -1) if d not in growth]
    for d in scan_dims:
        have = prod(chunk)
        if have >= budget_elems:
            break
        room = max(1, budget_elems // have)
        if room < element_shape[d]:
            ext = 1 << (room.bit_length() - 1) if snap else room
        else:
            ext = element_shape[d]
        chunk[d] = ext
    # final safety: never exceed the stripe
    while prod(chunk) * itemsize > stripe_size and max(chunk) > 1:
        d = int(np.argmax(chunk))
        chunk[d] = max(1, chunk[d] // 2)
    return tuple(chunk)


def chunk_stripe_report(chunk_shape: Sequence[int], stripe_size: int,
                        dtype: str | np.dtype | type = DRXType.DOUBLE
                        ) -> dict:
    """Quantify how a chunk shape interacts with the stripe size.

    Returns a dict with the chunk payload size, the chunk/stripe ratio,
    and the worst-case number of server requests a single chunk access
    costs (the E5 metric).
    """
    if stripe_size < 1:
        raise DRXExtendError(f"stripe size must be positive, got "
                             f"{stripe_size}")
    if not chunk_shape or any(c < 1 for c in chunk_shape):
        raise DRXExtendError(f"bad chunk shape {tuple(chunk_shape)}")
    if isinstance(dtype, str):
        itemsize = DRXType.to_numpy(dtype).itemsize
    else:
        itemsize = np.dtype(dtype).itemsize
    nbytes = prod(chunk_shape) * itemsize
    ratio = nbytes / stripe_size
    # Chunk q lives at byte offset q * nbytes (direct placement), so
    # alignment is periodic, not arbitrary:
    # * stripe a multiple of the chunk: chunks tile stripes exactly and
    #   never straddle a boundary — always one request;
    # * chunk a multiple of the stripe: every chunk starts on a stripe
    #   boundary — exactly ``ratio`` requests;
    # * otherwise some chunk offsets straddle: ceil(ratio) + 1 worst
    #   case.
    if stripe_size % nbytes == 0:
        worst_requests = 1
    elif nbytes % stripe_size == 0:
        worst_requests = nbytes // stripe_size
    else:
        worst_requests = int(np.ceil(ratio)) + 1
    return {
        "chunk_nbytes": nbytes,
        "stripe_size": stripe_size,
        "ratio": ratio,
        "worst_case_requests": max(1, worst_requests),
        "fits_one_stripe": nbytes <= stripe_size,
    }
