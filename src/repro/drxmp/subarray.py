"""Collective and independent sub-array I/O between zones and the file.

This module implements the paper's central I/O method (sections II-A and
IV-B):

1. Each process computes the linear addresses of its zone's chunks with
   the vectorized mapping function ``F*`` and sorts them increasing —
   the *filetype* is then an ``MPI_Type_indexed`` over whole chunks, so
   the file is scanned sequentially ("the chunk layout on disk are
   sequential and ... in increasing order of the linear addresses").
2. A collective ``Read_all`` (or an independent ``Read_at``) moves the
   chunk payloads.
3. The inverse mapping ``F*^-1`` recovers each arriving chunk's
   k-dimensional index, and the chunk is assigned into the requested
   position and *order* of the in-memory array ("Once the k-dimensional
   index is known the element can be assigned to the desired location in
   memory") — this is the on-the-fly transposition: asking for C order
   or Fortran order costs the same I/O.

Writes run the same pipeline backwards.  Partial edge chunks are padded
to full chunk size in the file (standard chunked-format practice); the
pad bytes are sliced away on read and zero-filled on write.
"""

from __future__ import annotations

import numpy as np

from ..core.chunking import box_shape, chunks_covering_box, validate_box
from ..core.errors import DRXIndexError
from ..core.inverse import f_star_inv_many
from ..core.mapping import f_star_many
from ..core.metadata import DRXMeta
from ..core.scatter import full_chunk_mask, gather_chunks, scatter_chunks
from ..drx.ioplan import coalesce_addresses
from ..mpi import datatypes
from ..mpi.file import File
from .partition import Zone

__all__ = ["chunk_datatype", "indexed_filetype", "zone_read",
           "zone_write", "box_read", "box_write"]


def chunk_datatype(meta: DRXMeta) -> datatypes.Datatype:
    """The committed MPI datatype of one whole chunk payload.

    Memoized per meta-data object: the chunk datatype depends only on
    the element dtype and the chunk element count, both immutable for
    the array's lifetime, so every filetype construction of every
    transfer reuses one committed instance instead of re-deriving it.
    """
    key = ("chunk_dt", meta.dtype_name, meta.chunk_elems)
    dt = meta._cache.get(key)
    if dt is None:
        base = datatypes.from_numpy_dtype(meta.dtype)
        dt = base.Create_contiguous(meta.chunk_elems).Commit()
        meta._cache[key] = dt
        datatypes.DATATYPE_STATS.note("chunk_dt_misses")
    else:
        datatypes.DATATYPE_STATS.note("chunk_dt_hits")
    return dt


def indexed_filetype(meta: DRXMeta,
                     addresses: np.ndarray) -> datatypes.Datatype:
    """An indexed filetype over whole chunks at the given (sorted) linear
    chunk addresses — the listing's ``MPI_Type_indexed(..., map, chunk)``.

    Adjacent addresses are pre-coalesced into multi-chunk blocks, so a
    zone whose chunks sit consecutively on disk (the common case under
    ``F*``) builds a filetype of a few long runs instead of one run per
    chunk.  The resulting typemap is byte-identical to the per-chunk
    construction (the datatype layer merges adjacent runs anyway); only
    the construction cost and the run bookkeeping shrink.  Unsorted
    address lists fall back to the literal per-chunk construction to
    preserve the standard's error behaviour at ``Set_view``.
    """
    chunk = chunk_datatype(meta)
    addrs = np.ascontiguousarray(addresses, dtype=np.int64)
    if addrs.size and np.all(np.diff(addrs) > 0):
        starts, counts = coalesce_addresses(addrs)
        ft = chunk.Create_indexed([int(c) for c in counts],
                                  [int(s) for s in starts])
    else:
        ft = chunk.Create_indexed([1] * len(addrs),
                                  [int(a) for a in addrs])
    return ft.Commit()


#: Bound on memoized F* plans per meta generation (zones repeat a small
#: number of distinct chunk-index sets; the cap only guards pathological
#: callers issuing thousands of distinct boxes between extends).
_PLAN_CACHE_MAX = 64


def _sorted_chunk_plan(meta: DRXMeta, chunk_indices: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
    """``(sorted addresses, chunk indices in that file order)``.

    Memoized on the axial index's *generation*: between extends the
    mapping ``F*`` is pure, so a rank re-reading the same zone (the
    steady state of the iterative workloads) skips both the vectorized
    mapping and the sort.  Any extension bumps the generation and drops
    the cached plans wholesale.
    """
    if chunk_indices.shape[0] == 0:
        return (np.empty(0, dtype=np.int64),
                chunk_indices.reshape(0, meta.rank))
    cache = meta._cache.setdefault("plans", {})
    gen = meta.eci.generation
    if cache.get("generation") != gen:
        cache.clear()
        cache["generation"] = gen
    key = chunk_indices.tobytes()
    hit = cache.get(key)
    if hit is not None:
        return hit
    addrs = f_star_many(meta.eci, chunk_indices)
    order = np.argsort(addrs, kind="stable")
    plan = (addrs[order], chunk_indices[order])
    if len(cache) <= _PLAN_CACHE_MAX:
        cache[key] = plan
    return plan


def _scatter_chunks(meta: DRXMeta, staging: np.ndarray,
                    addresses: np.ndarray, out: np.ndarray,
                    origin: tuple[int, ...]) -> None:
    """Scatter chunk payloads (file order) into an element-space array.

    ``staging`` is ``(nchunks, *chunk_shape)``; ``out`` starts at element
    ``origin`` of the principal array.  Uses ``F*^-1`` to recover each
    chunk's index — the paper's read-side use of the inverse mapping —
    then hands the whole batch to the dense-grid scatter kernel (one
    array-at-a-time copy instead of a per-chunk Python loop).
    """
    if addresses.size == 0:
        return
    indices = f_star_inv_many(meta.eci, addresses)
    scatter_chunks(staging, indices, meta.chunk_shape,
                   meta.element_bounds, out, origin)


def _gather_chunks(meta: DRXMeta, values: np.ndarray,
                   addresses: np.ndarray,
                   origin: tuple[int, ...]) -> np.ndarray:
    """Inverse of :meth:`_scatter_chunks`: build padded chunk payloads
    (file order) from an element-space array starting at ``origin``."""
    indices = f_star_inv_many(meta.eci, addresses) if addresses.size else \
        np.empty((0, meta.rank), dtype=np.int64)
    return gather_chunks(indices, meta.chunk_shape, meta.element_bounds,
                         values, origin, dtype=meta.dtype)


# ---------------------------------------------------------------------------
# zone-granularity transfers (the primary DRX-MP read/write path)
# ---------------------------------------------------------------------------

def zone_read(fh: File, meta: DRXMeta, zone: Zone, order: str = "C",
              collective: bool = True) -> np.ndarray:
    """Read one process's zone into a fresh array of the given order.

    ``collective=True`` issues ``Read_all`` (all ranks of ``fh.comm``
    must call together, zones may differ); ``False`` issues an
    independent ``Read_at``.
    """
    if order not in ("C", "F"):
        raise DRXIndexError(f"order must be 'C' or 'F', got {order!r}")
    addrs, _idx = _sorted_chunk_plan(meta, zone.chunk_indices())
    etype = datatypes.from_numpy_dtype(meta.dtype)
    # zero-filled: unwritten chunks (sparse/short reads) must read as 0
    staging = np.zeros((len(addrs), *meta.chunk_shape), dtype=meta.dtype)
    if len(addrs):
        ft = indexed_filetype(meta, addrs)
        fh.Set_view(0, etype, ft)
    else:
        fh.Set_view(0, etype)
    if collective:
        fh.Read_at_all(0, staging if len(addrs) else staging[:0])
    else:
        fh.Read_at(0, staging if len(addrs) else staging[:0])
    lo, hi = zone.element_box(meta.chunk_shape, meta.element_bounds)
    out = np.zeros(box_shape(lo, hi), dtype=meta.dtype, order=order)
    _scatter_chunks(meta, staging, addrs, out, lo)
    return out


def zone_write(fh: File, meta: DRXMeta, zone: Zone, values: np.ndarray,
               collective: bool = True) -> None:
    """Write one process's zone from ``values`` (shaped like the zone's
    clipped element box)."""
    lo, hi = zone.element_box(meta.chunk_shape, meta.element_bounds)
    expect = box_shape(lo, hi)
    if tuple(values.shape) != expect:
        raise DRXIndexError(
            f"zone buffer shape {tuple(values.shape)} != zone box {expect}"
        )
    values = np.asarray(values, dtype=meta.dtype)
    addrs, _idx = _sorted_chunk_plan(meta, zone.chunk_indices())
    staging = _gather_chunks(meta, values, addrs, lo)
    etype = datatypes.from_numpy_dtype(meta.dtype)
    if len(addrs):
        ft = indexed_filetype(meta, addrs)
        fh.Set_view(0, etype, ft)
    else:
        fh.Set_view(0, etype)
    if collective:
        fh.Write_at_all(0, staging if len(addrs) else staging[:0])
    else:
        fh.Write_at(0, staging if len(addrs) else staging[:0])


# ---------------------------------------------------------------------------
# arbitrary-box transfers (independent, any rank, any rectilinear region)
# ---------------------------------------------------------------------------

def box_read(fh: File, meta: DRXMeta, lo, hi, order: str = "C",
             collective: bool = False) -> np.ndarray:
    """Read an arbitrary element box ``[lo, hi)`` (chunk-covering I/O)."""
    lo, hi = tuple(lo), tuple(hi)
    validate_box(lo, hi, meta.element_bounds)
    covering = chunks_covering_box(lo, hi, meta.chunk_shape)
    addrs, _idx = _sorted_chunk_plan(meta, covering)
    etype = datatypes.from_numpy_dtype(meta.dtype)
    staging = np.zeros((len(addrs), *meta.chunk_shape), dtype=meta.dtype)
    if len(addrs):
        fh.Set_view(0, etype, indexed_filetype(meta, addrs))
    else:
        fh.Set_view(0, etype)
    if collective:
        fh.Read_at_all(0, staging)
    else:
        fh.Read_at(0, staging)
    out = np.zeros(box_shape(lo, hi), dtype=meta.dtype, order=order)
    # scatter only the intersection of each chunk with the box — the
    # kernel clips every chunk box against [lo, hi) in one batch
    if len(addrs):
        indices = f_star_inv_many(meta.eci, addrs)
        scatter_chunks(staging, indices, meta.chunk_shape,
                       meta.element_bounds, out, lo)
    return out


def box_write(fh: File, meta: DRXMeta, lo, values: np.ndarray,
              collective: bool = False) -> None:
    """Write an arbitrary element box (read-modify-write at the edges).

    Chunks only partially covered by the box are read first so the
    untouched elements survive — the chunk is the unit of file access.
    """
    values = np.asarray(values, dtype=meta.dtype)
    lo = tuple(lo)
    hi = tuple(l + s for l, s in zip(lo, values.shape))
    validate_box(lo, hi, meta.element_bounds)
    covering = chunks_covering_box(lo, hi, meta.chunk_shape)
    addrs, _idx = _sorted_chunk_plan(meta, covering)
    etype = datatypes.from_numpy_dtype(meta.dtype)
    cs = meta.chunk_shape
    indices = f_star_inv_many(meta.eci, addrs) if len(addrs) else \
        np.empty((0, meta.rank), dtype=np.int64)
    # which covering chunks are only partially inside the box?
    partial_slots = np.flatnonzero(
        ~full_chunk_mask(indices, cs, meta.element_bounds, lo, hi)
    ).tolist() if len(addrs) else []
    staging = np.zeros((len(addrs), *cs), dtype=meta.dtype)
    if partial_slots:
        part_addrs = addrs[partial_slots]
        fh.Set_view(0, etype, indexed_filetype(meta, part_addrs))
        part = np.zeros((len(part_addrs), *cs), dtype=meta.dtype)
        if collective:
            fh.Read_at_all(0, part)
        else:
            fh.Read_at(0, part)
        staging[partial_slots] = part
    elif collective:
        # keep collective call counts matched across ranks
        fh.Set_view(0, etype)
        fh.Read_at_all(0, staging[:0])
    # overlay the box onto the (pre-read where partial) payloads
    gather_chunks(indices, cs, meta.element_bounds, values, lo,
                  staging=staging)
    if len(addrs):
        fh.Set_view(0, etype, indexed_filetype(meta, addrs))
    else:
        fh.Set_view(0, etype)
    if collective:
        fh.Write_at_all(0, staging)
    else:
        fh.Write_at(0, staging)
