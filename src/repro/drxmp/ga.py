"""A Global-Array-style shared view over the distributed zones.

The paper: "The remote memory access methods and the MPI-2 windowing
features can now be applied for processing the array as if each process
has access to the entire principal array.  This model of programming is
exactly the shared memory programming model of the Global-Array
toolkit."

Each process stores its zone's chunks *chunk-major* — a local buffer of
shape ``(n_local_chunks, *chunk_shape)``, sorted by linear chunk address
— and exposes it through an RMA window.  Because every process holds the
replicated meta-data and the partition, any process can compute, for any
chunk: its owner rank and its slot in the owner's buffer, entirely
locally.  ``get``/``put``/``acc`` then move whole chunks with
``Win.Get``/``Put``/``Accumulate`` (the chunk is the unit of access,
exactly as on disk).

The facade loads from / stores to a :class:`~repro.drxmp.api.DRXMPFile`
with collective I/O, completing the paper's DRA-compatible life cycle:
file -> distributed memory -> compute via get/put/acc -> file.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.chunking import box_shape, chunk_element_box, chunks_covering_box, validate_box
from ..core.errors import DRXDistributionError, DRXIndexError
from ..core.inverse import f_star_inv_many
from ..core.mapping import f_star_many
from ..core.metadata import DRXMeta
from ..mpi.comm import SUM, Intracomm
from ..mpi.datatypes import from_numpy_dtype
from ..mpi.win import Win
from .api import DRXMPFile

__all__ = ["GlobalArray"]


class GlobalArray:
    """A distributed in-memory extendible array with one-sided access."""

    def __init__(self, comm: Intracomm, meta: DRXMeta, partition) -> None:
        self.comm = comm
        self.meta = meta
        self.partition = partition
        if getattr(partition, "nprocs", None) != comm.size:
            raise DRXDistributionError(
                f"partition is for {getattr(partition, 'nprocs', '?')} "
                f"processes, communicator has {comm.size}"
            )
        # local chunks, sorted by linear address (the canonical slot order)
        my_chunks = partition.chunks_of(comm.rank)
        if my_chunks.shape[0]:
            addrs = f_star_many(meta.eci, my_chunks)
            order = np.argsort(addrs, kind="stable")
            self.local_addresses = addrs[order]
        else:
            self.local_addresses = np.empty(0, dtype=np.int64)
        self.local = np.zeros(
            (len(self.local_addresses), *meta.chunk_shape), dtype=meta.dtype
        )
        self._win = Win.Create(self.local, comm,
                               disp_unit=meta.dtype.itemsize)
        self._etype = from_numpy_dtype(meta.dtype)

    # ------------------------------------------------------------------
    # construction from / persistence to a DRX-MP file
    # ------------------------------------------------------------------
    @classmethod
    def from_file(cls, dmp: DRXMPFile, partition=None,
                  info: dict | None = None) -> "GlobalArray":
        """Collectively load a principal array into distributed memory.

        ``info`` merges MPI-IO hints (e.g. ``{"cb_nodes": 2}``) into the
        payload file before the collective read."""
        partition = partition or dmp.partition()
        if info:
            dmp.set_info(info)
        ga = cls(dmp.comm, dmp.meta.replicate(), partition)
        if len(ga.local_addresses):
            from .subarray import indexed_filetype
            ft = indexed_filetype(ga.meta, ga.local_addresses)
            dmp.handle.data_file.Set_view(0, ga._etype, ft)
        else:
            dmp.handle.data_file.Set_view(0, ga._etype)
        dmp.handle.data_file.Read_at_all(0, ga.local)
        # synchronize before anyone RMA-reads a still-loading window
        ga.sync()
        return ga

    def to_file(self, dmp: DRXMPFile, info: dict | None = None) -> None:
        """Collectively store the distributed array back to the file."""
        self.sync()
        if info:
            dmp.set_info(info)
        if len(self.local_addresses):
            from .subarray import indexed_filetype
            ft = indexed_filetype(self.meta, self.local_addresses)
            dmp.handle.data_file.Set_view(0, self._etype, ft)
        else:
            dmp.handle.data_file.Set_view(0, self._etype)
        dmp.handle.data_file.Write_at_all(0, self.local)

    # ------------------------------------------------------------------
    # ownership arithmetic (pure local computation on any rank)
    # ------------------------------------------------------------------
    def owner_and_slot(self, chunk_index: Sequence[int]) -> tuple[int, int]:
        """Owner rank and chunk slot in the owner's local buffer.

        Computable anywhere because the meta-data and partition are
        replicated: the slot is the position of the chunk's linear
        address among the owner's sorted addresses.
        """
        owner = self.partition.owner_of(chunk_index)
        addr = self.meta.eci.address(chunk_index)
        owned = self.partition.chunks_of(owner)
        addrs = np.sort(f_star_many(self.meta.eci, owned))
        slot = int(np.searchsorted(addrs, addr))
        if slot >= len(addrs) or addrs[slot] != addr:
            raise DRXIndexError(
                f"chunk {tuple(chunk_index)} not held by its owner {owner}"
            )
        return owner, slot

    @property
    def shape(self) -> tuple[int, ...]:
        return self.meta.element_bounds

    @property
    def chunk_shape(self) -> tuple[int, ...]:
        return self.meta.chunk_shape

    # ------------------------------------------------------------------
    # one-sided element access
    # ------------------------------------------------------------------
    def _chunk_rma(self, chunk_index, fetch: bool) -> tuple[np.ndarray, int, int]:
        owner, slot = self.owner_and_slot(chunk_index)
        nelem = self.meta.chunk_elems
        buf = np.empty(self.meta.chunk_shape, dtype=self.meta.dtype)
        if fetch:
            if owner == self.comm.rank:
                buf[...] = self.local[slot]
            else:
                self._win.Lock(owner)
                self._win.Get(buf, owner,
                              target=(slot * nelem, nelem, self._etype))
                self._win.Unlock(owner)
        return buf, owner, slot

    def get(self, lo: Sequence[int], hi: Sequence[int]) -> np.ndarray:
        """Fetch the element box ``[lo, hi)`` from wherever it lives."""
        lo, hi = tuple(lo), tuple(hi)
        validate_box(lo, hi, self.shape)
        out = np.zeros(box_shape(lo, hi), dtype=self.meta.dtype)
        for ci in chunks_covering_box(lo, hi, self.chunk_shape):
            ci = tuple(int(x) for x in ci)
            payload, _owner, _slot = self._chunk_rma(ci, fetch=True)
            c_lo, c_hi = chunk_element_box(ci, self.chunk_shape, self.shape)
            o_lo = tuple(max(a, b) for a, b in zip(c_lo, lo))
            o_hi = tuple(min(a, b) for a, b in zip(c_hi, hi))
            src = tuple(slice(a - c, b - c)
                        for a, b, c in zip(o_lo, o_hi, c_lo))
            dst = tuple(slice(a - l, b - l)
                        for a, b, l in zip(o_lo, o_hi, lo))
            out[dst] = payload[src]
        return out

    def put(self, lo: Sequence[int], values: np.ndarray) -> None:
        """Store ``values`` at ``lo``, chunk by chunk (read-modify-write
        under an exclusive lock for partially covered chunks)."""
        values = np.asarray(values, dtype=self.meta.dtype)
        lo = tuple(lo)
        hi = tuple(l + s for l, s in zip(lo, values.shape))
        validate_box(lo, hi, self.shape)
        nelem = self.meta.chunk_elems
        for ci in chunks_covering_box(lo, hi, self.chunk_shape):
            ci = tuple(int(x) for x in ci)
            owner, slot = self.owner_and_slot(ci)
            c_lo, c_hi = chunk_element_box(ci, self.chunk_shape, self.shape)
            full_lo = tuple(c * s for c, s in zip(ci, self.chunk_shape))
            full_hi = tuple(a + s for a, s in zip(full_lo, self.chunk_shape))
            covered = all(l <= a and b <= h for a, b, l, h
                          in zip(full_lo, full_hi, lo, hi))
            o_lo = tuple(max(a, b) for a, b in zip(c_lo, lo))
            o_hi = tuple(min(a, b) for a, b in zip(c_hi, hi))
            dst = tuple(slice(a - c, b - c)
                        for a, b, c in zip(o_lo, o_hi, full_lo))
            src = tuple(slice(a - l, b - l)
                        for a, b, l in zip(o_lo, o_hi, lo))
            if owner == self.comm.rank:
                self.local[slot][dst] = values[src]
                continue
            self._win.Lock(owner)
            try:
                if covered and box_shape(o_lo, o_hi) == self.chunk_shape:
                    payload = np.ascontiguousarray(values[src])
                else:
                    payload = np.empty(self.chunk_shape,
                                       dtype=self.meta.dtype)
                    self._win.Get(payload, owner,
                                  target=(slot * nelem, nelem, self._etype))
                    payload[dst] = values[src]
                self._win.Put(payload, owner,
                              target=(slot * nelem, nelem, self._etype))
            finally:
                self._win.Unlock(owner)

    def acc(self, lo: Sequence[int], values: np.ndarray) -> None:
        """Atomic element-wise addition into ``[lo, lo+shape)`` (GA_Acc)."""
        values = np.asarray(values, dtype=self.meta.dtype)
        lo = tuple(lo)
        hi = tuple(l + s for l, s in zip(lo, values.shape))
        validate_box(lo, hi, self.shape)
        nelem = self.meta.chunk_elems
        for ci in chunks_covering_box(lo, hi, self.chunk_shape):
            ci = tuple(int(x) for x in ci)
            owner, slot = self.owner_and_slot(ci)
            c_lo, c_hi = chunk_element_box(ci, self.chunk_shape, self.shape)
            full_lo = tuple(c * s for c, s in zip(ci, self.chunk_shape))
            o_lo = tuple(max(a, b) for a, b in zip(c_lo, lo))
            o_hi = tuple(min(a, b) for a, b in zip(c_hi, hi))
            dst = tuple(slice(a - c, b - c)
                        for a, b, c in zip(o_lo, o_hi, full_lo))
            src = tuple(slice(a - l, b - l)
                        for a, b, l in zip(o_lo, o_hi, lo))
            addend = np.zeros(self.chunk_shape, dtype=self.meta.dtype)
            addend[dst] = values[src]
            self._win.Lock(owner)
            try:
                self._win.Accumulate(addend, owner,
                                     target=(slot * nelem, nelem,
                                             self._etype), op=SUM)
            finally:
                self._win.Unlock(owner)

    # ------------------------------------------------------------------
    # zone views and synchronization
    # ------------------------------------------------------------------
    def local_elements(self, order: str = "C") -> tuple[np.ndarray, tuple]:
        """This rank's zone as a conventional element array.

        Returns ``(array, element origin)``.  Only meaningful for
        single-box partitions (BLOCK); BLOCK_CYCLIC holders should use
        :meth:`get` on their boxes.
        """
        zone = self.partition.zone_of(self.comm.rank)
        lo, hi = zone.element_box(self.chunk_shape, self.shape)
        out = np.zeros(box_shape(lo, hi), dtype=self.meta.dtype,
                       order=order)
        if len(self.local_addresses):
            indices = f_star_inv_many(self.meta.eci, self.local_addresses)
            for payload, ci in zip(self.local, indices):
                c_lo, c_hi = chunk_element_box(ci, self.chunk_shape,
                                               self.shape)
                src = tuple(slice(0, b - a) for a, b in zip(c_lo, c_hi))
                dst = tuple(slice(a - l, b - l)
                            for a, b, l in zip(c_lo, c_hi, lo))
                out[dst] = payload[src]
        return out, lo

    def update_local(self, values: np.ndarray) -> None:
        """Write a zone element array back into the local chunk slots."""
        zone = self.partition.zone_of(self.comm.rank)
        lo, hi = zone.element_box(self.chunk_shape, self.shape)
        if tuple(values.shape) != box_shape(lo, hi):
            raise DRXIndexError(
                f"zone buffer shape {tuple(values.shape)} != "
                f"{box_shape(lo, hi)}"
            )
        if len(self.local_addresses):
            indices = f_star_inv_many(self.meta.eci, self.local_addresses)
            for payload, ci in zip(self.local, indices):
                c_lo, c_hi = chunk_element_box(ci, self.chunk_shape,
                                               self.shape)
                dst = tuple(slice(0, b - a) for a, b in zip(c_lo, c_hi))
                src = tuple(slice(a - l, b - l)
                            for a, b, l in zip(c_lo, c_hi, lo))
                payload[dst] = values[src]

    def sync(self) -> None:
        """Barrier + memory fence (GA_Sync)."""
        self._win.Fence()

    def free(self) -> None:
        self._win.Free()
