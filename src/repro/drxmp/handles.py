"""Handles: the meta-data objects DRX-MP operations pass around.

The paper (section IV-A): "When an application opens a file, it obtains
a handle of a meta-data structure with which subsequent operations on
the datasets can be carried out. ... Memory resident arrays are also
associated with a meta-data structure pointer ... It gives a handle for
communicating data between the disk resident extendible array and the
in-memory resident array."

:class:`DRXMDHdl` is the per-process replica of an open principal
array's meta-data plus the MPI file handle; :class:`DRXMDMemHdl`
describes one process's in-memory sub-array (base array, covered zone,
element order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import DRXClosedError
from ..core.metadata import DRXMeta
from ..mpi.comm import Intracomm
from ..mpi.file import File
from .partition import Zone

__all__ = ["DRXMDHdl", "DRXMDMemHdl"]


@dataclass
class DRXMDHdl:
    """Per-process handle of an open DRX-MP principal array."""

    name: str
    comm: Intracomm
    meta: DRXMeta
    data_file: File
    mode: str
    closed: bool = False

    def require_open(self) -> None:
        if self.closed:
            raise DRXClosedError(f"DRX-MP handle {self.name!r} is closed")

    @property
    def rank(self) -> int:
        """This process's rank in the handle's communicator."""
        return self.comm.rank

    @property
    def nprocs(self) -> int:
        return self.comm.size


@dataclass
class DRXMDMemHdl:
    """Handle of one process's in-memory sub-array.

    ``array`` holds the zone's elements (clipped to the principal
    array's element bounds) in ``order`` ('C' or 'F') — the conventional
    in-memory layout the application requested at read time.
    """

    array: np.ndarray
    zone: Zone
    order: str = "C"
    #: element-space origin of ``array`` within the principal array
    origin: tuple[int, ...] = field(default_factory=tuple)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.array.shape)
