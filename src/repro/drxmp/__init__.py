"""``repro.drxmp`` — the parallel Disk Resident eXtendible array library.

Zones, collective sub-array I/O via MPI-IO file views, the DRXMP_* API
of the paper's section IV-C, and the Global-Array-style one-sided layer.
"""

from .api import (
    DRXMP_Close,
    DRXMP_Extend,
    DRXMP_Init,
    DRXMP_Open,
    DRXMP_Read,
    DRXMP_Read_all,
    DRXMP_Terminate,
    DRXMP_Write,
    DRXMP_Write_all,
    DRXMPFile,
)
from .ga import GlobalArray
from .gaops import (
    ga_add,
    ga_copy,
    ga_dot,
    ga_elem_multiply,
    ga_fill,
    ga_matmul,
    ga_norm2,
    ga_reduce_max,
    ga_reduce_min,
    ga_scale,
)
from .handles import DRXMDHdl, DRXMDMemHdl
from .partition import BlockCyclicPartition, BlockPartition, Zone, dims_create
from .tuning import chunk_stripe_report, suggest_chunk_shape
from .subarray import (
    box_read,
    box_write,
    chunk_datatype,
    indexed_filetype,
    zone_read,
    zone_write,
)

__all__ = [
    "DRXMPFile",
    "DRXMP_Init", "DRXMP_Open", "DRXMP_Close", "DRXMP_Terminate",
    "DRXMP_Read", "DRXMP_Read_all", "DRXMP_Write", "DRXMP_Write_all",
    "DRXMP_Extend",
    "GlobalArray",
    "ga_fill", "ga_scale", "ga_copy", "ga_add", "ga_elem_multiply",
    "ga_dot", "ga_norm2", "ga_reduce_max", "ga_reduce_min", "ga_matmul",
    "DRXMDHdl", "DRXMDMemHdl",
    "Zone", "BlockPartition", "BlockCyclicPartition", "dims_create",
    "zone_read", "zone_write", "box_read", "box_write",
    "chunk_datatype", "indexed_filetype",
    "suggest_chunk_shape", "chunk_stripe_report",
]
