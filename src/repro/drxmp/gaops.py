"""Collective mathematical operations on GlobalArrays.

The paper's stated integration goal: "Future work intends to develop the
interface functions to work with Global-Array library" so DRX-MP arrays
can "leverage all the array manipulation and scientific computing
capabilities of the GA-toolkit."  This module provides the core GA-style
operation set over :class:`~repro.drxmp.ga.GlobalArray`:

======================  ==============================================
``ga_fill``             GA_Fill — set every element
``ga_scale``            GA_Scale — multiply every element by a scalar
``ga_copy``             GA_Copy — duplicate one array into another
``ga_add``              GA_Add — ``c = alpha*a + beta*b`` element-wise
``ga_elem_multiply``    GA_Elem_multiply — Hadamard product
``ga_dot``              GA_Ddot — global inner product
``ga_norm2``            derived: sqrt(ga_dot(a, a))
``ga_reduce_max/min``   global element-wise extrema
``ga_matmul``           GA_Dgemm (2-D) — owner-computes blocked matmul
======================  ==============================================

All operations are **collective** over the array's communicator and
follow GA's owner-computes model: each rank transforms only the chunks
it owns (zero communication for the element-wise ops), with reductions
combining per-rank partials.  Edge chunks are padded in storage; the
helpers here mask the padding so reductions never see it.

Arrays combined element-wise must be *aligned*: same bounds, same chunk
shape, same growth history (hence identical chunk addresses) and the
same partition — checked, not assumed.
"""

from __future__ import annotations

import numpy as np

from ..core.chunking import chunk_element_box
from ..core.errors import DRXDistributionError, DRXIndexError
from ..core.inverse import f_star_inv_many
from .ga import GlobalArray

__all__ = [
    "ga_fill", "ga_scale", "ga_copy", "ga_add", "ga_elem_multiply",
    "ga_dot", "ga_norm2", "ga_reduce_max", "ga_reduce_min", "ga_matmul",
]


def _check_aligned(*arrays: GlobalArray) -> None:
    a = arrays[0]
    for b in arrays[1:]:
        if b.comm is not a.comm and b.comm.size != a.comm.size:
            raise DRXDistributionError("arrays live on different "
                                       "communicators")
        if b.shape != a.shape or b.chunk_shape != a.chunk_shape:
            raise DRXDistributionError(
                f"arrays not aligned: {b.shape}/{b.chunk_shape} vs "
                f"{a.shape}/{a.chunk_shape}"
            )
        if not np.array_equal(b.local_addresses, a.local_addresses):
            raise DRXDistributionError(
                "arrays not aligned: different chunk ownership (growth "
                "history or partition differs)"
            )


def _valid_masks(ga: GlobalArray) -> list[tuple[int, tuple[slice, ...]]]:
    """(slot, valid-region slices) for each locally owned chunk."""
    if not len(ga.local_addresses):
        return []
    indices = f_star_inv_many(ga.meta.eci, ga.local_addresses)
    out = []
    for slot, ci in enumerate(indices):
        lo, hi = chunk_element_box(ci, ga.chunk_shape, ga.shape)
        out.append((slot, tuple(slice(0, h - l) for l, h in zip(lo, hi))))
    return out


# ---------------------------------------------------------------------------
# element-wise (zero communication)
# ---------------------------------------------------------------------------

def ga_fill(ga: GlobalArray, value) -> None:
    """Set every element of ``ga`` to ``value`` (GA_Fill)."""
    for slot, valid in _valid_masks(ga):
        ga.local[slot][valid] = value
    ga.sync()


def ga_scale(ga: GlobalArray, alpha) -> None:
    """``ga *= alpha`` element-wise (GA_Scale)."""
    ga.local *= ga.meta.dtype.type(alpha)
    ga.sync()


def ga_copy(src: GlobalArray, dst: GlobalArray) -> None:
    """``dst[...] = src`` (GA_Copy); arrays must be aligned."""
    _check_aligned(src, dst)
    dst.local[...] = src.local
    dst.sync()


def ga_add(alpha, a: GlobalArray, beta, b: GlobalArray,
           c: GlobalArray) -> None:
    """``c = alpha*a + beta*b`` element-wise (GA_Add)."""
    _check_aligned(a, b, c)
    t = a.meta.dtype.type
    np.multiply(a.local, t(alpha), out=c.local)
    c.local += t(beta) * b.local
    c.sync()


def ga_elem_multiply(a: GlobalArray, b: GlobalArray,
                     c: GlobalArray) -> None:
    """``c = a * b`` element-wise (GA_Elem_multiply)."""
    _check_aligned(a, b, c)
    np.multiply(a.local, b.local, out=c.local)
    c.sync()


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def ga_dot(a: GlobalArray, b: GlobalArray):
    """Global inner product ``sum(a * b)`` (GA_Ddot).

    Chunk padding is zero on both sides, so the local partial is a plain
    flat dot; partials combine with an allreduce.
    """
    _check_aligned(a, b)
    local = np.vdot(a.local.reshape(-1), b.local.reshape(-1))
    return a.comm.allreduce(complex(local) if np.iscomplexobj(a.local)
                            else float(local))


def ga_norm2(a: GlobalArray) -> float:
    """Euclidean norm of the whole array."""
    val = ga_dot(a, a)
    return float(np.sqrt(abs(val)))


def _masked_reduce(ga: GlobalArray, np_op, mpi_op_neutral):
    best = mpi_op_neutral
    for slot, valid in _valid_masks(ga):
        region = ga.local[slot][valid]
        if region.size:
            best = np_op(best, np_op.reduce(region, axis=None))
    return best


def ga_reduce_max(ga: GlobalArray) -> float:
    """Global maximum over the *valid* elements (padding masked out)."""
    local = _masked_reduce(ga, np.maximum, -np.inf)
    from ..mpi.comm import MAX
    return float(ga.comm.allreduce(float(local), op=MAX))


def ga_reduce_min(ga: GlobalArray) -> float:
    """Global minimum over the valid elements."""
    local = _masked_reduce(ga, np.minimum, np.inf)
    from ..mpi.comm import MIN
    return float(ga.comm.allreduce(float(local), op=MIN))


# ---------------------------------------------------------------------------
# matrix multiplication (GA_Dgemm, 2-D, owner computes)
# ---------------------------------------------------------------------------

def ga_matmul(a: GlobalArray, b: GlobalArray, c: GlobalArray) -> None:
    """``c = a @ b`` for 2-D arrays (GA_Dgemm with alpha=1, beta=0).

    Owner-computes over output chunks: for each chunk ``(I, J)`` of
    ``c`` owned by this rank, accumulate ``A[I, K] @ B[K, J]`` over the
    inner chunk index ``K``, fetching remote operand chunks through the
    one-sided layer.  Works for any chunk-aligned shapes: inner
    dimensions must agree and all three arrays must share the chunk
    blocking of their shared dimensions.
    """
    if a.meta.rank != 2 or b.meta.rank != 2 or c.meta.rank != 2:
        raise DRXIndexError("ga_matmul is defined for 2-D arrays")
    m, ka = a.shape
    kb, n = b.shape
    if ka != kb or c.shape != (m, n):
        raise DRXIndexError(
            f"shape mismatch: ({m}x{ka}) @ ({kb}x{n}) -> {c.shape}"
        )
    if a.chunk_shape[1] != b.chunk_shape[0] or \
            c.chunk_shape != (a.chunk_shape[0], b.chunk_shape[1]):
        raise DRXIndexError(
            "chunk blockings must agree: a's columns with b's rows, "
            "c with (a rows, b cols)"
        )
    cs_m, cs_k = a.chunk_shape
    cs_n = b.chunk_shape[1]
    k_chunks = a.meta.chunk_bounds[1]

    my_chunks = (f_star_inv_many(c.meta.eci, c.local_addresses)
                 if len(c.local_addresses) else [])
    for slot, cij in enumerate(my_chunks):
        ci, cj = int(cij[0]), int(cij[1])
        out_lo, out_hi = chunk_element_box(cij, c.chunk_shape, c.shape)
        acc = np.zeros(c.chunk_shape, dtype=c.meta.dtype)
        for ck in range(k_chunks):
            a_lo = (ci * cs_m, ck * cs_k)
            a_hi = (min(a_lo[0] + cs_m, m), min(a_lo[1] + cs_k, ka))
            b_lo = (ck * cs_k, cj * cs_n)
            b_hi = (min(b_lo[0] + cs_k, kb), min(b_lo[1] + cs_n, n))
            if a_lo[0] >= a_hi[0] or a_lo[1] >= a_hi[1]:
                continue
            ablk = a.get(a_lo, a_hi)
            bblk = b.get(b_lo, b_hi)
            prod = ablk @ bblk
            acc[:prod.shape[0], :prod.shape[1]] += prod
        # store only the valid region of the output chunk
        valid = tuple(slice(0, h - l) for l, h in zip(out_lo, out_hi))
        c.local[slot][...] = 0
        c.local[slot][valid] = acc[valid]
    c.sync()
