"""``repro.pfs`` — the simulated parallel file system (PVFS2 stand-in).

Striped I/O servers with request/seek/byte counters and an analytic time
model.  See DESIGN.md §2 for the substitution rationale: the paper's
performance properties are properties of *access patterns*, which this
simulator measures deterministically.  The replication tier
(:mod:`repro.pfs.replication`) adds chained-declustered replicas,
degraded reads and online rebuild on top — see DESIGN.md §5c.
"""

from .costmodel import DEFAULT_COST_MODEL, CostModel
from .filesystem import ParallelFileSystem
from .pfile import PFSFile
from .replication import ReplicaLayout, replica_object_name
from .server import IOServer
from .stats import CollectiveStats, IOStats, ReplicaStats
from .striping import Extent, StripeLayout, coalesce_extents

__all__ = [
    "ParallelFileSystem",
    "PFSFile",
    "IOServer",
    "IOStats",
    "ReplicaStats",
    "CollectiveStats",
    "StripeLayout",
    "ReplicaLayout",
    "replica_object_name",
    "Extent",
    "coalesce_extents",
    "CostModel",
    "DEFAULT_COST_MODEL",
]
