"""A logical file striped over the I/O servers.

:class:`PFSFile` presents the byte-stream abstraction the MPI-IO layer
needs — vectored reads and writes of byte extents — on top of the striped
server objects.  It also implements the *collective* variants used by
two-phase collective I/O: the extents of every process are aggregated
(sorted + coalesced) before hitting the servers, then the data is
redistributed to the requesting processes.  The difference between the
independent and collective paths is precisely what experiment E3
measures.

All operations return the simulated elapsed time of the slowest server
touched (servers work in parallel), and the file keeps a cumulative
``io_time`` so callers can charge entire workloads.
"""

from __future__ import annotations

import threading

from ..core.errors import PFSError
from .server import IOServer
from .striping import Extent, StripeLayout, coalesce_extents

__all__ = ["PFSFile"]


class PFSFile:
    """One striped logical file (see module docstring)."""

    def __init__(self, name: str, servers: list[IOServer],
                 layout: StripeLayout) -> None:
        if layout.nservers != len(servers):
            raise PFSError(
                f"layout expects {layout.nservers} servers, got {len(servers)}"
            )
        self.name = name
        self.servers = servers
        self.layout = layout
        self._size = 0
        self._lock = threading.RLock()
        self.io_time = 0.0
        for s in servers:
            if not s.has_object(name):
                s.create_object(name)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Logical file size in bytes (highest byte written + 1)."""
        return self._size

    def set_size(self, size: int) -> None:
        """Preallocate / declare the logical size (MPI_File_set_size)."""
        if size < 0:
            raise PFSError(f"negative size {size}")
        with self._lock:
            self._size = max(self._size, size) if size >= self._size else size

    # ------------------------------------------------------------------
    # vectored independent I/O
    # ------------------------------------------------------------------
    def readv(self, extents: list[Extent]) -> tuple[bytes, float]:
        """Read the given byte extents, concatenated in request order.

        Holes (extents past EOF) read as zeros.
        """
        with self._lock:
            per_server = self.layout.split_extents(extents)
            pieces: dict[int, bytes] = {}
            elapsed = 0.0
            for sid, reqs in enumerate(per_server):
                if not reqs:
                    continue
                data, t = self.servers[sid].read_batch(
                    self.name, [(srv_off, ln) for srv_off, _lo, ln in reqs]
                )
                elapsed = max(elapsed, t)
                for (_srv_off, log_off, _ln), piece in zip(reqs, data):
                    pieces[log_off] = piece
            out = bytearray()
            for off, length in extents:
                pos = off
                end = off + length
                while pos < end:
                    piece = pieces[pos]
                    out += piece
                    pos += len(piece)
            self.io_time += elapsed
            return bytes(out), elapsed

    def writev(self, extents: list[Extent], data: bytes) -> float:
        """Write ``data`` into the given byte extents, in order."""
        total = sum(n for _o, n in extents)
        if total != len(data):
            raise PFSError(
                f"writev: extents cover {total} bytes, data has {len(data)}"
            )
        with self._lock:
            per_server = self.layout.split_extents(extents)
            # Slice the flat data buffer according to logical offsets.
            slices: dict[int, tuple[int, int]] = {}
            pos = 0
            for off, length in extents:
                cursor = off
                end = off + length
                # record where each logical offset's bytes sit in `data`
                slices[off] = (pos, length)
                pos += length
                del cursor, end
            elapsed = 0.0
            for sid, reqs in enumerate(per_server):
                if not reqs:
                    continue
                batch: list[tuple[int, bytes]] = []
                for srv_off, log_off, ln in reqs:
                    src = self._locate(slices, log_off)
                    start = src[0] + (log_off - src[2])
                    batch.append((srv_off, bytes(data[start:start + ln])))
                t = self.servers[sid].write_batch(self.name, batch)
                elapsed = max(elapsed, t)
            self._size = max(self._size,
                             max((o + n for o, n in extents), default=0))
            self.io_time += elapsed
            return elapsed

    @staticmethod
    def _locate(slices: dict[int, tuple[int, int]], log_off: int
                ) -> tuple[int, int, int]:
        """Find the data-buffer slice containing logical offset ``log_off``.

        Returns ``(buf_start, length, extent_offset)``.
        """
        # extents are few per call; a linear probe over the dict is fine
        for ext_off, (buf_start, length) in slices.items():
            if ext_off <= log_off < ext_off + length:
                return buf_start, length, ext_off
        raise PFSError(f"internal: no slice covers offset {log_off}")

    # ------------------------------------------------------------------
    # collective (two-phase) I/O
    # ------------------------------------------------------------------
    def collective_readv(self, extents_per_rank: list[list[Extent]]
                         ) -> tuple[list[bytes], float]:
        """Aggregated read on behalf of all ranks at once.

        Phase 1: union all extents, coalesce into the fewest contiguous
        runs, read them with one vectored request.  Phase 2: carve each
        rank's bytes out of the aggregate.  Returns one concatenated
        buffer per rank plus the simulated elapsed time.
        """
        with self._lock:
            union = coalesce_extents(
                [e for rank in extents_per_rank for e in rank]
            )
            blob, elapsed = self.readv(union)
            # index into the aggregate
            starts: list[tuple[int, int]] = []   # (offset, blob position)
            pos = 0
            for off, length in union:
                starts.append((off, pos))
                pos += length
            out: list[bytes] = []
            for rank_extents in extents_per_rank:
                buf = bytearray()
                for off, length in rank_extents:
                    run_off, run_pos = _containing_run(starts, union, off)
                    at = run_pos + (off - run_off)
                    buf += blob[at:at + length]
                out.append(bytes(buf))
            return out, elapsed

    def collective_writev(self, extents_per_rank: list[list[Extent]],
                          data_per_rank: list[bytes]) -> float:
        """Aggregated write on behalf of all ranks at once.

        Ranks must not overlap (MPI leaves overlapping collective writes
        undefined; we raise).  Adjacent extents across ranks merge into
        single contiguous server writes.
        """
        with self._lock:
            tagged: list[tuple[int, int, int, int]] = []  # off, len, rank, pos
            for r, rank_extents in enumerate(extents_per_rank):
                pos = 0
                for off, length in rank_extents:
                    tagged.append((off, length, r, pos))
                    pos += length
                if pos != len(data_per_rank[r]):
                    raise PFSError(
                        f"rank {r}: extents cover {pos} bytes, data has "
                        f"{len(data_per_rank[r])}"
                    )
            # validate non-overlap, then merge adjacents
            coalesce_extents([(o, n) for o, n, _r, _p in tagged],
                             merge_overlaps=False)
            tagged.sort()
            merged_extents: list[Extent] = []
            payload = bytearray()
            for off, length, r, pos in tagged:
                payload += data_per_rank[r][pos:pos + length]
                if merged_extents and merged_extents[-1][0] + merged_extents[-1][1] == off:
                    o0, n0 = merged_extents[-1]
                    merged_extents[-1] = (o0, n0 + length)
                else:
                    merged_extents.append((off, length))
            return self.writev(merged_extents, bytes(payload))

    # ------------------------------------------------------------------
    # convenience scalar forms
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        data, _t = self.readv([(offset, length)])
        return data

    def write(self, offset: int, data: bytes) -> None:
        self.writev([(offset, len(data))], data)


def _containing_run(starts: list[tuple[int, int]],
                    union: list[Extent], off: int) -> tuple[int, int]:
    """Binary search the coalesced run containing logical offset ``off``."""
    lo, hi = 0, len(starts)
    while lo < hi - 1:
        mid = (lo + hi) // 2
        if starts[mid][0] <= off:
            lo = mid
        else:
            hi = mid
    run_off, run_pos = starts[lo]
    if not run_off <= off < run_off + union[lo][1]:
        raise PFSError(f"internal: offset {off} outside aggregated runs")
    return run_off, run_pos
