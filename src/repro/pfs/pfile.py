"""A logical file striped over the I/O servers.

:class:`PFSFile` presents the byte-stream abstraction the MPI-IO layer
needs — vectored reads and writes of byte extents — on top of the striped
server objects.  It also implements the *collective* variants used by
two-phase collective I/O: the extents of every process are aggregated
(sorted + coalesced) before hitting the servers, then the data is
redistributed to the requesting processes.  The difference between the
independent and collective paths is precisely what experiment E3
measures.

When the layout is a :class:`~repro.pfs.replication.ReplicaLayout` with
``replication > 1`` the file becomes server-failure tolerant:

* writes fan out to every replica copy — *through* to stale servers,
  skipping only dead ones (and wiped ones whose objects a rebuild has
  yet to recreate), with the redundancy debt recorded in
  :class:`~repro.pfs.stats.ReplicaStats`,
* reads prefer the primary copy but *fail over* per stripe to the next
  live replica when a server is down, stale, suspect, or errors
  mid-call,
* an online :meth:`rebuild` re-replicates a revived or replacement
  server's objects in coalesced batches, holding the file lock only per
  batch so reads and writes interleave freely — safe because concurrent
  writes reach the stale target directly (write-through) while the
  rebuild replays everything older from a partner copy.

With ``replication == 1`` every operation takes the exact historical
code path — identical bytes, identical stats — so the default
configuration pays nothing for the failure tier.

Two notions of time coexist and must not be conflated:

``io_time`` (and every per-call return value)
    *Simulated* time from the analytic cost model — the elapsed time of
    the slowest server touched, as if the per-server batches ran in
    parallel on real hardware.  It is deterministic and independent of
    how the Python process actually executes the batches.
``wall_time``
    *Measured* wall-clock seconds this process spent inside ``readv`` /
    ``writev`` (collectives included — they funnel through both).  With
    an :class:`~repro.core.executor.IOExecutor` attached, per-server
    batches are dispatched concurrently and ``wall_time`` genuinely
    shrinks toward the max-server shape ``io_time`` always assumed;
    serially it is the sum-over-servers.  Benchmarks report both so the
    overlap actually achieved is visible.

When an executor is attached (the default — sized by
``DRX_EXECUTOR_THREADS``), multi-server batches are dispatched
concurrently and their results applied in deterministic server order;
the serial loops are kept verbatim and remain the only path whenever a
fault plan is armed (scripted fault schedules are op-count ordered) or
the executor is disabled.
"""

from __future__ import annotations

import threading
import time

from ..core import faultsites
from ..core.errors import PFSError, ServerDownError
from ..core.executor import IOExecutor, resolve_executor
from ..core.faultsites import crash_point
from .replication import ReplicaLayout, replica_object_name
from .server import IOServer
from .stats import CollectiveStats, ReplicaStats
from .striping import Extent, StripeLayout, coalesce_extents

__all__ = ["PFSFile"]

#: default coalesced-copy batch for online rebuild (bytes)
REBUILD_BATCH = 1 << 20


class PFSFile:
    """One striped logical file (see module docstring)."""

    def __init__(self, name: str, servers: list[IOServer],
                 layout: StripeLayout,
                 executor: "IOExecutor | None | str" = "auto") -> None:
        if layout.nservers != len(servers):
            raise PFSError(
                f"layout expects {layout.nservers} servers, got {len(servers)}"
            )
        self.name = name
        self.servers = servers
        self.layout = layout
        self.replication = getattr(layout, "replication", 1)
        self.rstats = ReplicaStats()
        #: counters of the collective-I/O engine (repro.mpi.collective);
        #: shared by every rank touching this file, updated under
        #: ``cstats_lock``
        self.cstats = CollectiveStats()
        self.cstats_lock = threading.Lock()
        self._size = 0
        self._lock = threading.RLock()
        #: cumulative *simulated* elapsed time (max-over-servers per call)
        self.io_time = 0.0
        #: cumulative *measured* wall-clock seconds spent in readv/writev
        self.wall_time = 0.0
        #: per-server dispatch pool (None = serial); ``"auto"`` resolves
        #: the process-wide ``pfs``-tier executor from the environment
        self.executor = resolve_executor(executor, tier="pfs")
        for copy in range(self.replication):
            obj = replica_object_name(name, copy)
            for s in servers:
                try:
                    if not s.has_object(obj):
                        s.create_object(obj)
                except ServerDownError:
                    # a dead server at creation time gets its objects
                    # when it is rebuilt
                    continue

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Logical file size in bytes (highest byte written + 1)."""
        return self._size

    def set_size(self, size: int) -> None:
        """Preallocate / declare the logical size (MPI_File_set_size)."""
        if size < 0:
            raise PFSError(f"negative size {size}")
        with self._lock:
            self._size = max(self._size, size) if size >= self._size else size

    # ------------------------------------------------------------------
    # vectored independent I/O
    # ------------------------------------------------------------------
    def readv(self, extents: list[Extent]) -> tuple[bytes, float]:
        """Read the given byte extents, concatenated in request order.

        Holes (extents past EOF) read as zeros.  Replicated layouts fail
        over per stripe to the next live replica; when every replica of
        a needed stripe is unreachable a :class:`ServerDownError`
        escapes.
        """
        t0 = time.perf_counter()
        try:
            with self._lock:
                if self.replication == 1:
                    return self._readv_plain(extents)
                return self._readv_replicated(extents)
        finally:
            dt = time.perf_counter() - t0
            with self._lock:        # concurrent callers both account
                self.wall_time += dt

    def faults_armed(self) -> bool:
        """Whether any fault machinery (an active fault-site plan or a
        per-server fault plan) is observing this file's servers.  The
        concurrency layers — per-server dispatch here, aggregator
        fan-out in :mod:`repro.mpi.collective` — fall back to their
        serial order while this is true, so scripted fault schedules
        keep firing deterministically."""
        if faultsites.any_active():
            return True
        return any(s.fault_plan is not None for s in self.servers)

    def _parallel_ok(self) -> bool:
        """Whether per-server batches may be dispatched concurrently.

        Serial whenever the executor is off or any fault machinery is
        armed — scripted fault schedules and chaos kill sites are
        op-count ordered, so they must observe the historical dispatch
        order.
        """
        if self.executor is None:
            return False
        return not self.faults_armed()

    def _readv_plain(self, extents: list[Extent]) -> tuple[bytes, float]:
        """The historical unreplicated read path.  Per-server batches
        are dispatched concurrently when the executor allows; results
        are applied in server order either way, so bytes and stats are
        identical to the serial loop."""
        per_server = self.layout.split_extents(extents)
        work = [(sid, reqs) for sid, reqs in enumerate(per_server) if reqs]
        if len(work) > 1 and self._parallel_ok():
            futs = [self.executor.submit(
                        self.servers[sid].read_batch, self.name,
                        [(srv_off, ln) for srv_off, _lo, ln in reqs])
                    for sid, reqs in work]
            results = self.executor.gather(futs)
        else:
            results = [self.servers[sid].read_batch(
                           self.name,
                           [(srv_off, ln) for srv_off, _lo, ln in reqs])
                       for sid, reqs in work]
        pieces: dict[int, bytes] = {}
        elapsed = 0.0
        for (sid, reqs), (data, t) in zip(work, results):
            elapsed = max(elapsed, t)
            for (_srv_off, log_off, _ln), piece in zip(reqs, data):
                pieces[log_off] = piece
        out = self._assemble(extents, pieces)
        self.io_time += elapsed
        return out, elapsed

    def _readv_replicated(self, extents: list[Extent]
                          ) -> tuple[bytes, float]:
        """Replica-aware read: route each stripe piece to its preferred
        live copy, re-routing on server errors until data arrives or no
        replica remains."""
        crash_point("server.kill.readv.begin")
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        failed: set[int] = set()
        pieces: dict[int, bytes] = {}
        elapsed_by_server: dict[int, float] = {}

        # plan: route every stripe piece to a copy
        batches: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for off, length in extents:
            for _srv, srv_off, log_off, take in layout.split_extent(off,
                                                                    length):
                stripe = log_off // layout.stripe_size
                choice = self._choose_copy(stripe, failed)
                if choice is None:
                    raise ServerDownError(
                        f"file {self.name!r}: no live replica for stripe "
                        f"{stripe}")
                copy, sid = choice
                if copy:
                    self.rstats.degraded_reads += 1
                batches.setdefault((sid, copy), []).append(
                    (srv_off, log_off, take))

        queue = sorted(batches.items())
        parallel = self._parallel_ok()
        while queue:
            if parallel and len(queue) > 1:
                # dispatch the whole wave concurrently; failures fail
                # over sequentially and re-enter the queue as a new wave.
                # Kill-site hooks force the serial branch below, so the
                # crash points here are free no-ops kept for symmetry.
                wave, queue = queue, []
                futs = []
                for (sid, copy), reqs in wave:
                    crash_point("server.kill.readv.batch")
                    obj = replica_object_name(self.name, copy)
                    futs.append(self.executor.submit(
                        self.servers[sid].read_batch, obj,
                        [(srv_off, ln) for srv_off, _lo, ln in reqs]))
                results = self.executor.gather(futs, return_exceptions=True)
                for ((sid, copy), reqs), res in zip(wave, results):
                    if isinstance(res, PFSError):
                        queue.extend(
                            self._reroute_failed(sid, reqs, failed, res))
                    elif isinstance(res, BaseException):
                        raise res
                    else:
                        data, t = res
                        elapsed_by_server[sid] = (
                            elapsed_by_server.get(sid, 0.0) + t)
                        for (_so, log_off, _ln), piece in zip(reqs, data):
                            pieces[log_off] = piece
                continue
            (sid, copy), reqs = queue.pop(0)
            crash_point("server.kill.readv.batch")
            obj = replica_object_name(self.name, copy)
            try:
                data, t = self.servers[sid].read_batch(
                    obj, [(srv_off, ln) for srv_off, _lo, ln in reqs])
            except PFSError as exc:
                # the server answered with an error (or a chaos hook just
                # killed it): exclude it and re-route its pieces
                queue.extend(self._reroute_failed(sid, reqs, failed, exc))
                continue
            elapsed_by_server[sid] = elapsed_by_server.get(sid, 0.0) + t
            for (_srv_off, log_off, _ln), piece in zip(reqs, data):
                pieces[log_off] = piece

        elapsed = max(elapsed_by_server.values(), default=0.0)
        out = self._assemble(extents, pieces)
        self.io_time += elapsed
        return out, elapsed

    def _reroute_failed(self, sid: int, reqs: list[tuple[int, int, int]],
                        failed: set[int], exc: PFSError
                        ) -> list[tuple[tuple[int, int],
                                        list[tuple[int, int, int]]]]:
        """Route a failed server's pieces to the next live replica,
        returning the sorted re-issued batches."""
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        failed.add(sid)
        self.rstats.failovers += 1
        rerouted: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for srv_off, log_off, ln in reqs:
            stripe = log_off // layout.stripe_size
            choice = self._choose_copy(stripe, failed)
            if choice is None:
                raise ServerDownError(
                    f"file {self.name!r}: no live replica left for "
                    f"stripe {stripe}") from exc
            copy2, sid2 = choice
            if copy2:
                self.rstats.degraded_reads += 1
            rerouted.setdefault((sid2, copy2), []).append(
                (srv_off, log_off, ln))
        return sorted(rerouted.items())

    def readv_copy(self, extents: list[Extent], copy: int
                   ) -> tuple[bytes, float]:
        """Read the extents purely from replica copy ``copy`` — no
        failover.  The CRC-arbitration hook: when checksums disagree,
        the DRX layer asks each copy for its version of the bytes.
        Raises if any server holding the copy is unreachable.
        """
        if not 0 <= copy < self.replication:
            raise PFSError(
                f"copy {copy} outside replication factor {self.replication}")
        with self._lock:
            if copy == 0:
                return self._readv_plain(extents)
            layout: ReplicaLayout = self.layout  # type: ignore[assignment]
            per_server = layout.split_extents_copy(extents, copy)
            obj = replica_object_name(self.name, copy)
            pieces: dict[int, bytes] = {}
            elapsed = 0.0
            for sid, reqs in enumerate(per_server):
                if not reqs:
                    continue
                srv = self.servers[sid]
                if not srv.available:
                    raise ServerDownError(
                        f"file {self.name!r}: copy {copy} unreachable, "
                        f"server {sid} unavailable")
                data, t = srv.read_batch(
                    obj, [(srv_off, ln) for srv_off, _lo, ln in reqs])
                elapsed = max(elapsed, t)
                for (_srv_off, log_off, _ln), piece in zip(reqs, data):
                    pieces[log_off] = piece
            out = self._assemble(extents, pieces)
            self.io_time += elapsed
            return out, elapsed

    def writev(self, extents: list[Extent], data: bytes) -> float:
        """Write ``data`` into the given byte extents, in order.

        Replicated layouts fan the write out to every copy.  Dead
        servers — and wiped-then-revived ones whose objects a rebuild
        has yet to recreate — are skipped and counted as
        ``missed_writes`` (the debt a later rebuild repays); merely
        *stale* servers receive the write too (write-through, counted
        as ``write_through``), which is what makes writes safe to
        interleave with an online rebuild.  Every piece must land on at
        least one *readable* copy or :class:`ServerDownError` is
        raised.
        """
        total = sum(n for _o, n in extents)
        if total != len(data):
            raise PFSError(
                f"writev: extents cover {total} bytes, data has {len(data)}"
            )
        t0 = time.perf_counter()
        try:
            with self._lock:
                if self.replication == 1:
                    return self._writev_plain(extents, data)
                return self._writev_replicated(extents, data)
        finally:
            dt = time.perf_counter() - t0
            with self._lock:        # concurrent callers both account
                self.wall_time += dt

    def _writev_plain(self, extents: list[Extent], data: bytes) -> float:
        """The historical unreplicated write path.  Batches are built in
        server order, then dispatched concurrently when the executor
        allows — bytes and stats identical to the serial loop."""
        per_server = self.layout.split_extents(extents)
        slices = self._slices(extents)
        work: list[tuple[int, list[tuple[int, bytes]]]] = []
        for sid, reqs in enumerate(per_server):
            if not reqs:
                continue
            batch: list[tuple[int, bytes]] = []
            for srv_off, log_off, ln in reqs:
                src = self._locate(slices, log_off)
                start = src[0] + (log_off - src[2])
                batch.append((srv_off, bytes(data[start:start + ln])))
            work.append((sid, batch))
        if len(work) > 1 and self._parallel_ok():
            futs = [self.executor.submit(
                        self.servers[sid].write_batch, self.name, batch)
                    for sid, batch in work]
            times = self.executor.gather(futs)
        else:
            times = [self.servers[sid].write_batch(self.name, batch)
                     for sid, batch in work]
        elapsed = max(times, default=0.0)
        self._size = max(self._size,
                         max((o + n for o, n in extents), default=0))
        self.io_time += elapsed
        return elapsed

    def _writev_replicated(self, extents: list[Extent],
                           data: bytes) -> float:
        """Fan the write out to every replica copy."""
        crash_point("server.kill.writev.begin")
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        slices = self._slices(extents)
        if self._parallel_ok():
            return self._writev_replicated_parallel(extents, data, slices)
        elapsed_by_server: dict[int, float] = {}
        #: landed copies per piece, keyed by logical offset
        landed: dict[int, int] = {}
        for copy in range(self.replication):
            per_server = layout.split_extents_copy(extents, copy)
            obj = replica_object_name(self.name, copy)
            for sid, reqs in enumerate(per_server):
                if not reqs:
                    continue
                crash_point("server.kill.writev.batch")
                srv = self.servers[sid]
                for _srv_off, log_off, _ln in reqs:
                    landed.setdefault(log_off, 0)
                if not srv.alive or (srv.stale and not srv.has_object(obj)):
                    # dead — or wiped-then-revived with the object still
                    # missing: rebuild recreates it and repays the debt
                    self.rstats.missed_writes += len(reqs)
                    continue
                batch: list[tuple[int, bytes]] = []
                nbytes = 0
                for srv_off, log_off, ln in reqs:
                    src = self._locate(slices, log_off)
                    start = src[0] + (log_off - src[2])
                    batch.append((srv_off, bytes(data[start:start + ln])))
                    nbytes += ln
                try:
                    t = srv.write_batch(obj, batch)
                except ServerDownError:
                    # killed between the liveness check and the batch
                    # (e.g. by a chaos hook at the crash point above)
                    self.rstats.missed_writes += len(reqs)
                    continue
                # any other PFSError propagates: a reachable server that
                # refuses a write is a transient fault the retry layers
                # must re-issue (the fan-out is idempotent), not a
                # silently tolerable replica skip — stale write-through
                # included, else a batch lost after its region was
                # rebuilt would go unnoticed
                elapsed_by_server[sid] = elapsed_by_server.get(sid, 0.0) + t
                if srv.available:
                    for _srv_off, log_off, _ln in reqs:
                        landed[log_off] += 1
                else:
                    # write-through to a stale server: the bytes are
                    # down, but nobody may read them until rebuild —
                    # they don't count toward durability
                    self.rstats.write_through += len(reqs)
                if copy:
                    self.rstats.replica_bytes += nbytes
        orphans = [off for off, n in landed.items() if n == 0]
        if orphans:
            raise ServerDownError(
                f"file {self.name!r}: write lost — no readable replica "
                f"for pieces at offsets {sorted(orphans)[:4]}"
                f"{'...' if len(orphans) > 4 else ''}")
        elapsed = max(elapsed_by_server.values(), default=0.0)
        self._size = max(self._size,
                         max((o + n for o, n in extents), default=0))
        self.io_time += elapsed
        return elapsed

    def _writev_replicated_parallel(self, extents: list[Extent],
                                    data: bytes,
                                    slices: dict[int, tuple[int, int]]
                                    ) -> float:
        """Concurrent replica fan-out: liveness checks, skip accounting
        and batch assembly run in the main thread in the serial order;
        only the server batches themselves are dispatched concurrently,
        with results applied back in that same order.  Semantically
        identical to the serial fan-out (the fan-out is idempotent, so
        the one observable difference — later batches still landing
        after an earlier batch raised a non-ServerDown error — is
        covered by the same retry contract)."""
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        elapsed_by_server: dict[int, float] = {}
        landed: dict[int, int] = {}
        jobs: list[tuple[int, int, IOServer, str,
                         list[tuple[int, int, int]],
                         list[tuple[int, bytes]], int]] = []
        for copy in range(self.replication):
            per_server = layout.split_extents_copy(extents, copy)
            obj = replica_object_name(self.name, copy)
            for sid, reqs in enumerate(per_server):
                if not reqs:
                    continue
                srv = self.servers[sid]
                for _srv_off, log_off, _ln in reqs:
                    landed.setdefault(log_off, 0)
                if not srv.alive or (srv.stale and not srv.has_object(obj)):
                    self.rstats.missed_writes += len(reqs)
                    continue
                batch: list[tuple[int, bytes]] = []
                nbytes = 0
                for srv_off, log_off, ln in reqs:
                    src = self._locate(slices, log_off)
                    start = src[0] + (log_off - src[2])
                    batch.append((srv_off, bytes(data[start:start + ln])))
                    nbytes += ln
                jobs.append((copy, sid, srv, obj, reqs, batch, nbytes))
        futs = [self.executor.submit(srv.write_batch, obj, batch)
                for _copy, _sid, srv, obj, _reqs, batch, _n in jobs]
        results = self.executor.gather(futs, return_exceptions=True)
        for (copy, sid, srv, _obj, reqs, _batch, nbytes), res in zip(
                jobs, results):
            if isinstance(res, ServerDownError):
                # killed between the liveness check and the batch
                self.rstats.missed_writes += len(reqs)
                continue
            if isinstance(res, BaseException):
                raise res
            elapsed_by_server[sid] = elapsed_by_server.get(sid, 0.0) + res
            if srv.available:
                for _srv_off, log_off, _ln in reqs:
                    landed[log_off] += 1
            else:
                self.rstats.write_through += len(reqs)
            if copy:
                self.rstats.replica_bytes += nbytes
        orphans = [off for off, n in landed.items() if n == 0]
        if orphans:
            raise ServerDownError(
                f"file {self.name!r}: write lost — no readable replica "
                f"for pieces at offsets {sorted(orphans)[:4]}"
                f"{'...' if len(orphans) > 4 else ''}")
        elapsed = max(elapsed_by_server.values(), default=0.0)
        self._size = max(self._size,
                         max((o + n for o, n in extents), default=0))
        self.io_time += elapsed
        return elapsed

    def sieve_writev(self,
                     direct: tuple[list[Extent], bytes] | None,
                     rmw: list[tuple[int, int, list[tuple[int, bytes]]]]
                     ) -> float:
        """One atomic data-sieving write: hole-free runs go straight to
        :meth:`writev`; each ``(cover_off, cover_len, pieces)`` job in
        ``rmw`` is a read-modify-write — read the covering extent, patch
        the ``(offset, bytes)`` pieces in, write the whole extent back.

        The file lock is held across *all* of it, which is what makes
        concurrent sieved writers (two ranks with complementary strided
        views, say) safe: a covering write can never clobber bytes
        another rank patched in between the read and the write-back.
        Returns the simulated elapsed time (max over the serialized
        steps, matching the per-call convention of readv/writev).
        """
        elapsed = 0.0
        with self._lock:
            if direct is not None and direct[0]:
                elapsed = max(elapsed, self.writev(direct[0], direct[1]))
            for cover_off, cover_len, pieces in rmw:
                blob, t_r = self.readv([(cover_off, cover_len)])
                buf = bytearray(blob)
                for off, data in pieces:
                    at = off - cover_off
                    buf[at:at + len(data)] = data
                t_w = self.writev([(cover_off, cover_len)], bytes(buf))
                elapsed = max(elapsed, t_r + t_w)
        return elapsed

    # ------------------------------------------------------------------
    # replica routing helpers
    # ------------------------------------------------------------------
    def _choose_copy(self, stripe: int,
                     excluded: set[int]) -> tuple[int, int] | None:
        """Pick the replica copy to read stripe ``stripe`` from.

        Preference order: the lowest copy index whose server is
        available, not suspect and not excluded; then (degraded further)
        any available non-excluded server even if suspect.  ``None``
        when no replica is reachable.
        """
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        fallback: tuple[int, int] | None = None
        for copy in range(self.replication):
            sid = layout.replica_server(stripe, copy)
            srv = self.servers[sid]
            if sid in excluded or not srv.available:
                continue
            if not srv.suspect:
                return copy, sid
            if fallback is None:
                fallback = (copy, sid)
        return fallback

    @staticmethod
    def _slices(extents: list[Extent]) -> dict[int, tuple[int, int]]:
        """Map each extent's logical offset to its slice of the flat
        data buffer."""
        slices: dict[int, tuple[int, int]] = {}
        pos = 0
        for off, length in extents:
            slices[off] = (pos, length)
            pos += length
        return slices

    @staticmethod
    def _assemble(extents: list[Extent],
                  pieces: dict[int, bytes]) -> bytes:
        """Concatenate stripe pieces back into request order."""
        out = bytearray()
        for off, length in extents:
            pos = off
            end = off + length
            while pos < end:
                piece = pieces[pos]
                out += piece
                pos += len(piece)
        return bytes(out)

    @staticmethod
    def _locate(slices: dict[int, tuple[int, int]], log_off: int
                ) -> tuple[int, int, int]:
        """Find the data-buffer slice containing logical offset ``log_off``.

        Returns ``(buf_start, length, extent_offset)``.
        """
        # extents are few per call; a linear probe over the dict is fine
        for ext_off, (buf_start, length) in slices.items():
            if ext_off <= log_off < ext_off + length:
                return buf_start, length, ext_off
        raise PFSError(f"internal: no slice covers offset {log_off}")

    # ------------------------------------------------------------------
    # online rebuild / verification
    # ------------------------------------------------------------------
    def rebuild(self, sid: int, batch_bytes: int = REBUILD_BATCH) -> float:
        """Re-replicate this file's objects on server ``sid`` from their
        partner copies.  Returns the total simulated copy time.  The
        file lock is held only per batch, so reads and writes interleave
        with the rebuild (see :meth:`rebuild_steps`)."""
        total = 0.0
        for t in self.rebuild_steps(sid, batch_bytes):
            total += t
        return total

    def rebuild_steps(self, sid: int, batch_bytes: int = REBUILD_BATCH):
        """Generator form of :meth:`rebuild`, yielding the simulated
        time of each coalesced copy batch.  Benchmarks drive this to
        interleave rebuild traffic with foreground reads
        deterministically.

        The chained layout makes every copy object a byte-identical
        mirror of a partner object on another server
        (:meth:`~repro.pfs.replication.ReplicaLayout.partner_server`),
        so rebuild is a plain coalesced object copy — no stripe-by-
        stripe bookkeeping.

        Concurrent writes cannot be lost: the fan-out writes *through*
        to the stale target, and both the partner read and the target
        write of one batch happen under the file lock.  A write before
        a region's batch is captured by the partner copy; a write after
        it lands on the target directly (file extension past the extent
        captured at pass start included).
        """
        if self.replication == 1:
            # no redundancy to restore; writes during the outage failed
            # loudly, so the surviving bytes are already authoritative
            return
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        target = self.servers[sid]
        if not target.alive:
            raise ServerDownError(
                f"cannot rebuild server {sid}: it is down (revive first)")
        crash_point("server.kill.rebuild.begin")
        for copy in range(self.replication):
            obj = replica_object_name(self.name, copy)
            with self._lock:
                # drop the (possibly stale, possibly longer) old object so
                # bytes the source holds implicitly as zeros don't survive
                if target.has_object(obj):
                    target.delete_object(obj)
                target.create_object(obj)
                extent = layout.object_extent(sid, copy, self._size)
            self.rstats.rebuilt_objects += 1
            pos = 0
            failed: set[int] = {sid}
            while pos < extent:
                crash_point("server.kill.rebuild.batch")
                take = min(batch_bytes, extent - pos)
                with self._lock:
                    src = self._rebuild_source(sid, copy, failed)
                    if src is None:
                        raise ServerDownError(
                            f"cannot rebuild {obj!r} on server {sid}: no "
                            f"live partner copy")
                    src_copy, src_sid = src
                    src_obj = replica_object_name(self.name, src_copy)
                    try:
                        data, t_r = self.servers[src_sid].read_batch(
                            src_obj, [(pos, take)])
                    except PFSError:
                        failed.add(src_sid)
                        continue
                    t_w = target.write_batch(obj, [(pos, data[0])])
                self.rstats.rebuild_bytes += take
                pos += take
                yield t_r + t_w

    def _rebuild_source(self, sid: int, copy: int,
                        excluded: set[int]) -> tuple[int, int] | None:
        """Pick a live partner ``(src_copy, src_server)`` mirroring the
        copy-``copy`` object of server ``sid``."""
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        for src_copy in range(self.replication):
            if src_copy == copy:
                continue
            src_sid = layout.partner_server(sid, copy, src_copy)
            if src_sid in excluded:
                continue
            if self.servers[src_sid].available:
                return src_copy, src_sid
        return None

    def repair(self, offset: int, data: bytes) -> None:
        """Overwrite the byte range on every reachable replica copy
        *out of band* — no stats, no simulated cost, no fault plan
        (:meth:`IOServer.patch <repro.pfs.server.IOServer.patch>`).

        The CRC-arbitration write-back path: healing a diverging copy
        happens on a logical *read*, so it must not perturb the write
        counters or injected-fault schedules the simulator promises to
        keep faithful.  Unreachable or stale copies are skipped (best
        effort; a rebuild restores them wholesale).
        """
        if not data:
            return
        data = bytes(data)
        extent = [(offset, len(data))]
        with self._lock:
            for copy in range(self.replication):
                obj = replica_object_name(self.name, copy)
                if self.replication == 1:
                    per_server = self.layout.split_extents(extent)
                else:
                    layout: ReplicaLayout = self.layout  # type: ignore[assignment]
                    per_server = layout.split_extents_copy(extent, copy)
                for sid, reqs in enumerate(per_server):
                    srv = self.servers[sid]
                    if not reqs or not srv.available:
                        continue
                    for srv_off, log_off, ln in reqs:
                        start = log_off - offset
                        try:
                            srv.patch(obj, srv_off,
                                      data[start:start + ln])
                        except PFSError:
                            continue

    def verify_replicas(self) -> list[tuple[int, int, int]]:
        """Byte-compare every copy object against its primary-copy
        mirror (out of band — no stats, no cost).  Returns the list of
        divergent ``(server, copy, partner_server)`` triples; an empty
        list means full redundancy.  Objects on dead servers are
        reported as divergent (redundancy is lost either way).
        """
        if self.replication == 1:
            return []
        layout: ReplicaLayout = self.layout  # type: ignore[assignment]
        bad: list[tuple[int, int, int]] = []
        with self._lock:
            for copy in range(1, self.replication):
                obj = replica_object_name(self.name, copy)
                for sid in range(layout.nservers):
                    partner = layout.partner_server(sid, copy, 0)
                    extent = layout.object_extent(sid, copy, self._size)
                    try:
                        mine = self.servers[sid].peek(obj, 0, extent)
                        ref = self.servers[partner].peek(self.name, 0,
                                                         extent)
                    except ServerDownError:
                        bad.append((sid, copy, partner))
                        continue
                    if mine != ref:
                        bad.append((sid, copy, partner))
        return bad

    # ------------------------------------------------------------------
    # collective (two-phase) I/O
    # ------------------------------------------------------------------
    def collective_readv(self, extents_per_rank: list[list[Extent]]
                         ) -> tuple[list[bytes], float]:
        """Aggregated read on behalf of all ranks at once.

        Phase 1: union all extents, coalesce into the fewest contiguous
        runs, read them with one vectored request.  Phase 2: carve each
        rank's bytes out of the aggregate.  Returns one concatenated
        buffer per rank plus the simulated elapsed time.
        """
        with self._lock:
            union = coalesce_extents(
                [e for rank in extents_per_rank for e in rank]
            )
            blob, elapsed = self.readv(union)
            # index into the aggregate
            starts: list[tuple[int, int]] = []   # (offset, blob position)
            pos = 0
            for off, length in union:
                starts.append((off, pos))
                pos += length
            out: list[bytes] = []
            for rank_extents in extents_per_rank:
                buf = bytearray()
                for off, length in rank_extents:
                    run_off, run_pos = _containing_run(starts, union, off)
                    at = run_pos + (off - run_off)
                    buf += blob[at:at + length]
                out.append(bytes(buf))
            return out, elapsed

    def collective_writev(self, extents_per_rank: list[list[Extent]],
                          data_per_rank: list[bytes]) -> float:
        """Aggregated write on behalf of all ranks at once.

        Ranks must not overlap (MPI leaves overlapping collective writes
        undefined; we raise).  Adjacent extents across ranks merge into
        single contiguous server writes.
        """
        with self._lock:
            tagged: list[tuple[int, int, int, int]] = []  # off, len, rank, pos
            for r, rank_extents in enumerate(extents_per_rank):
                pos = 0
                for off, length in rank_extents:
                    tagged.append((off, length, r, pos))
                    pos += length
                if pos != len(data_per_rank[r]):
                    raise PFSError(
                        f"rank {r}: extents cover {pos} bytes, data has "
                        f"{len(data_per_rank[r])}"
                    )
            # validate non-overlap, then merge adjacents
            coalesce_extents([(o, n) for o, n, _r, _p in tagged],
                             merge_overlaps=False)
            tagged.sort()
            merged_extents: list[Extent] = []
            payload = bytearray()
            for off, length, r, pos in tagged:
                payload += data_per_rank[r][pos:pos + length]
                if merged_extents and merged_extents[-1][0] + merged_extents[-1][1] == off:
                    o0, n0 = merged_extents[-1]
                    merged_extents[-1] = (o0, n0 + length)
                else:
                    merged_extents.append((off, length))
            return self.writev(merged_extents, bytes(payload))

    # ------------------------------------------------------------------
    # convenience scalar forms
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        data, _t = self.readv([(offset, length)])
        return data

    def write(self, offset: int, data: bytes) -> None:
        self.writev([(offset, len(data))], data)


def _containing_run(starts: list[tuple[int, int]],
                    union: list[Extent], off: int) -> tuple[int, int]:
    """Binary search the coalesced run containing logical offset ``off``."""
    lo, hi = 0, len(starts)
    while lo < hi - 1:
        mid = (lo + hi) // 2
        if starts[mid][0] <= off:
            lo = mid
        else:
            hi = mid
    run_off, run_pos = starts[lo]
    if not run_off <= off < run_off + union[lo][1]:
        raise PFSError(f"internal: offset {off} outside aggregated runs")
    return run_off, run_pos
