"""Round-robin striping arithmetic (PVFS2-style).

A logical byte stream is cut into fixed-size *stripes*; stripe ``s``
lives on server ``s % nservers`` at server-local offset
``(s // nservers) * stripe_size + (byte offset within the stripe)``.
This is the classic RAID-0 / PVFS "simple striping" distribution the
paper's testbed used, and the thing experiment E5 ("reconciling the
chunk size with the strip size") sweeps against the chunk size.

All functions are pure; :class:`StripeLayout` is immutable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.errors import PFSError

__all__ = ["StripeLayout", "Extent", "coalesce_extents"]

#: A half-open byte extent ``(offset, length)`` with ``length > 0``.
Extent = tuple[int, int]


def coalesce_extents(extents: Sequence[Extent],
                     merge_overlaps: bool = True) -> list[Extent]:
    """Sort extents by offset and merge adjacent/overlapping runs.

    This is the aggregation step of two-phase collective I/O: the union
    of every process's request, expressed as the fewest contiguous runs.

    With ``merge_overlaps=False`` overlapping extents raise
    :class:`PFSError` (collective writes must not overlap — the MPI
    standard leaves overlapping concurrent writes undefined).
    """
    cleaned = [(int(o), int(n)) for o, n in extents if n > 0]
    if any(o < 0 or n < 0 for o, n in cleaned):
        raise PFSError(f"negative extent in {extents!r}")
    if not cleaned:
        return []
    cleaned.sort()
    out: list[Extent] = [cleaned[0]]
    for off, length in cleaned[1:]:
        last_off, last_len = out[-1]
        last_end = last_off + last_len
        if off < last_end and not merge_overlaps:
            raise PFSError(
                f"overlapping extents: [{last_off},{last_end}) and "
                f"[{off},{off + length})"
            )
        if off <= last_end:
            out[-1] = (last_off, max(last_end, off + length) - last_off)
        else:
            out.append((off, length))
    return out


@dataclass(frozen=True)
class StripeLayout:
    """Immutable description of a striped byte-stream layout."""

    nservers: int
    stripe_size: int

    def __post_init__(self) -> None:
        if self.nservers < 1:
            raise PFSError(f"need >= 1 server, got {self.nservers}")
        if self.stripe_size < 1:
            raise PFSError(f"stripe size must be >= 1, got {self.stripe_size}")

    def server_of(self, offset: int) -> int:
        """Which server holds the byte at logical ``offset``."""
        return (offset // self.stripe_size) % self.nservers

    def to_server_offset(self, offset: int) -> tuple[int, int]:
        """``(server, server-local offset)`` of logical byte ``offset``."""
        stripe, within = divmod(offset, self.stripe_size)
        return stripe % self.nservers, (stripe // self.nservers) * self.stripe_size + within

    def split_extent(self, offset: int, length: int
                     ) -> Iterator[tuple[int, int, int, int]]:
        """Split a logical extent into per-server pieces.

        Yields ``(server, server_offset, logical_offset, piece_length)``
        tuples in increasing logical-offset order.  ``logical_offset``
        lets callers map returned data back into the logical stream.
        """
        if offset < 0 or length < 0:
            raise PFSError(f"bad extent ({offset}, {length})")
        pos = offset
        end = offset + length
        while pos < end:
            stripe, within = divmod(pos, self.stripe_size)
            take = min(self.stripe_size - within, end - pos)
            server = stripe % self.nservers
            srv_off = (stripe // self.nservers) * self.stripe_size + within
            yield server, srv_off, pos, take
            pos += take

    def split_extents(self, extents: Sequence[Extent]
                      ) -> list[list[tuple[int, int, int]]]:
        """Group extent pieces per server.

        Returns ``pieces[server] = [(server_offset, logical_offset,
        length), ...]`` preserving the request order within each server
        (which is what the seek model measures).
        """
        pieces: list[list[tuple[int, int, int]]] = [[] for _ in range(self.nservers)]
        for off, length in extents:
            for server, srv_off, log_off, take in self.split_extent(off, length):
                pieces[server].append((srv_off, log_off, take))
        return pieces
