"""The parallel file system namespace.

:class:`ParallelFileSystem` ties the pieces together: a set of
:class:`~repro.pfs.server.IOServer` instances, a
:class:`~repro.pfs.striping.StripeLayout`, and a name -> file mapping
with create/open/delete semantics.  It is the stand-in for the paper's
PVFS2 mount point (``/mnt/pvfs2/...``).

The file system can optionally *persist* to a host directory: ``dump()``
writes every logical file as one flat POSIX file plus nothing else, and
``load()`` re-imports it.  That keeps the simulator's counters intact
while letting examples round-trip data to disk.
"""

from __future__ import annotations

import pathlib
import threading

from ..core.errors import PFSError
from .costmodel import CostModel, DEFAULT_COST_MODEL
from .pfile import PFSFile
from .server import IOServer
from .stats import IOStats
from .striping import StripeLayout

__all__ = ["ParallelFileSystem"]


class ParallelFileSystem:
    """A simulated PVFS2-like striped file system."""

    def __init__(self, nservers: int = 4, stripe_size: int = 64 * 1024,
                 cost_model: CostModel = DEFAULT_COST_MODEL) -> None:
        self.layout = StripeLayout(nservers=nservers, stripe_size=stripe_size)
        self.cost_model = cost_model
        self.servers = [IOServer(i, cost_model) for i in range(nservers)]
        self._files: dict[str, PFSFile] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, name: str) -> PFSFile:
        with self._lock:
            if name in self._files:
                raise PFSError(f"file exists: {name!r}")
            f = PFSFile(name, self.servers, self.layout)
            self._files[name] = f
            return f

    def open(self, name: str) -> PFSFile:
        with self._lock:
            try:
                return self._files[name]
            except KeyError:
                raise PFSError(f"no such file: {name!r}") from None

    def open_or_create(self, name: str) -> PFSFile:
        with self._lock:
            return self._files.get(name) or self.create(name)

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        with self._lock:
            f = self._files.pop(name, None)
            if f is None:
                raise PFSError(f"no such file: {name!r}")
            for s in self.servers:
                s.delete_object(name)

    def listdir(self) -> list[str]:
        return sorted(self._files)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def nservers(self) -> int:
        return self.layout.nservers

    @property
    def stripe_size(self) -> int:
        return self.layout.stripe_size

    def total_stats(self) -> IOStats:
        """Aggregate counters over all servers."""
        total = IOStats()
        for s in self.servers:
            total.add(s.stats)
        return total

    def per_server_stats(self) -> list[IOStats]:
        return [s.stats.snapshot() for s in self.servers]

    def reset_stats(self) -> None:
        for s in self.servers:
            s.stats.reset()
        for f in self._files.values():
            f.io_time = 0.0

    # ------------------------------------------------------------------
    # persistence (optional convenience)
    # ------------------------------------------------------------------
    def dump(self, directory: str | pathlib.Path) -> None:
        """Write every logical file flat into ``directory``."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, f in self._files.items():
            data = f.read(0, f.size)
            (directory / name.replace("/", "__")).write_bytes(data)

    def load(self, directory: str | pathlib.Path) -> None:
        """Import every flat file of ``directory`` as a logical file."""
        directory = pathlib.Path(directory)
        for path in sorted(directory.iterdir()):
            if not path.is_file():
                continue
            name = path.name.replace("__", "/")
            f = self.open_or_create(name)
            f.write(0, path.read_bytes())
