"""The parallel file system namespace.

:class:`ParallelFileSystem` ties the pieces together: a set of
:class:`~repro.pfs.server.IOServer` instances, a
:class:`~repro.pfs.striping.StripeLayout`, and a name -> file mapping
with create/open/delete semantics.  It is the stand-in for the paper's
PVFS2 mount point (``/mnt/pvfs2/...``).

With ``replication > 1`` the layout becomes a chained-declustering
:class:`~repro.pfs.replication.ReplicaLayout` and the file system gains
a failure API: ``kill_server()`` / ``revive_server()`` take one I/O
server down and back (``wipe=True`` models a disk-losing replacement),
and ``rebuild_server()`` runs the online re-replication of every file's
objects before clearing the server's *stale* flag, restoring full
redundancy without ever taking a file offline.

The file system can optionally *persist* to a host directory: ``dump()``
writes every logical file as one flat POSIX file plus nothing else, and
``load()`` re-imports it.  That keeps the simulator's counters intact
while letting examples round-trip data to disk.
"""

from __future__ import annotations

import pathlib
import threading

from ..core.errors import PFSError, ServerDownError
from ..core.executor import IOExecutor, resolve_executor
from .costmodel import CostModel, DEFAULT_COST_MODEL
from .pfile import PFSFile
from .replication import ReplicaLayout, replica_object_name
from .server import IOServer
from .stats import CollectiveStats, IOStats, ReplicaStats
from .striping import StripeLayout

__all__ = ["ParallelFileSystem"]


class ParallelFileSystem:
    """A simulated PVFS2-like striped file system."""

    def __init__(self, nservers: int = 4, stripe_size: int = 64 * 1024,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 replication: int = 1, fault_plan=None,
                 executor: "IOExecutor | None | str" = "auto",
                 realtime_factor: float = 0.0) -> None:
        if replication == 1:
            self.layout: StripeLayout = StripeLayout(
                nservers=nservers, stripe_size=stripe_size)
        else:
            self.layout = ReplicaLayout(
                nservers=nservers, stripe_size=stripe_size,
                replication=replication)
        self.replication = replication
        self.cost_model = cost_model
        #: shared per-server dispatch pool handed to every file
        #: (``"auto"`` = the process-wide ``pfs``-tier executor sized by
        #: ``DRX_EXECUTOR_THREADS``; ``None`` = serial)
        self.executor = resolve_executor(executor, tier="pfs")
        self.servers = [IOServer(i, cost_model, fault_plan=fault_plan,
                                 realtime_factor=realtime_factor)
                        for i in range(nservers)]
        self._files: dict[str, PFSFile] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def create(self, name: str) -> PFSFile:
        with self._lock:
            if name in self._files:
                raise PFSError(f"file exists: {name!r}")
            f = PFSFile(name, self.servers, self.layout,
                        executor=self.executor)
            self._files[name] = f
            return f

    def open(self, name: str) -> PFSFile:
        with self._lock:
            try:
                return self._files[name]
            except KeyError:
                raise PFSError(f"no such file: {name!r}") from None

    def open_or_create(self, name: str) -> PFSFile:
        with self._lock:
            return self._files.get(name) or self.create(name)

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        with self._lock:
            if name not in self._files:
                raise PFSError(f"no such file: {name!r}")
            first_error: PFSError | None = None
            for copy in range(self.replication):
                obj = replica_object_name(name, copy)
                for s in self.servers:
                    try:
                        s.delete_object(obj)
                    except ServerDownError:
                        # a dead server's orphan objects are dropped by
                        # rebuild_server when it comes back
                        continue
                    except PFSError as exc:
                        # transient fault: keep sweeping the remaining
                        # servers, then surface the error with the file
                        # still in the namespace — a retried delete()
                        # finishes the job (delete_object is idempotent)
                        if first_error is None:
                            first_error = exc
            if first_error is not None:
                raise first_error
            del self._files[name]

    def listdir(self) -> list[str]:
        return sorted(self._files)

    # ------------------------------------------------------------------
    # failure API
    # ------------------------------------------------------------------
    def kill_server(self, sid: int, wipe: bool = False) -> None:
        """Take I/O server ``sid`` down.  With ``wipe`` its objects are
        lost too (a replacement server rather than a reboot)."""
        self._server(sid).kill(wipe=wipe)

    def revive_server(self, sid: int) -> None:
        """Bring a killed server back *stale*: it serves nothing until
        :meth:`rebuild_server` re-replicates its objects."""
        self._server(sid).revive()

    def rebuild_server(self, sid: int,
                       batch_bytes: int | None = None) -> float:
        """Online rebuild: re-replicate every file's objects on server
        ``sid`` from their partner copies, drop objects belonging to
        since-deleted files, then clear the server's stale flag.
        Returns the total simulated copy time.  Files stay readable and
        writable throughout (the per-file lock is held only per copy
        batch), and files *created* during the rebuild are picked up in
        a follow-up pass: the orphan sweep and the stale-flag clear run
        under the namespace lock only once no unrebuilt file remains,
        so a freshly created file can neither lose its objects to the
        sweep nor slip past the rebuild."""
        srv = self._server(sid)
        if not srv.alive:
            raise ServerDownError(
                f"cannot rebuild server {sid}: it is down (revive first)")
        total = 0.0
        done: dict[int, PFSFile] = {}     # id -> file (ref pins the id)
        while True:
            with self._lock:
                pending = [f for f in self._files.values()
                           if id(f) not in done]
                if not pending:
                    # holding the lock: no create() can add a file
                    # between this check, the orphan sweep, and the
                    # stale-flag clear
                    live_objects = {
                        replica_object_name(name, copy)
                        for name in self._files
                        for copy in range(self.replication)
                    }
                    for obj in [o for o in list(srv._objects)
                                if o not in live_objects]:
                        srv.delete_object(obj)
                    srv.mark_rebuilt()
                    return total
            for f in pending:
                done[id(f)] = f
                if batch_bytes is None:
                    total += f.rebuild(sid)
                else:
                    total += f.rebuild(sid, batch_bytes)

    def _server(self, sid: int) -> IOServer:
        if not 0 <= sid < len(self.servers):
            raise PFSError(f"no such server: {sid}")
        return self.servers[sid]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def nservers(self) -> int:
        return self.layout.nservers

    @property
    def stripe_size(self) -> int:
        return self.layout.stripe_size

    def total_stats(self) -> IOStats:
        """Aggregate counters over all servers."""
        total = IOStats()
        for s in self.servers:
            total.add(s.stats)
        return total

    def per_server_stats(self) -> list[IOStats]:
        return [s.stats.snapshot() for s in self.servers]

    def replica_stats(self) -> ReplicaStats:
        """Aggregate replication / failure counters over all files."""
        total = ReplicaStats()
        with self._lock:
            for f in self._files.values():
                total.add(f.rstats)
        return total

    def collective_stats(self) -> CollectiveStats:
        """Aggregate collective-I/O engine counters over all files."""
        total = CollectiveStats()
        with self._lock:
            for f in self._files.values():
                total.add(f.cstats)
        return total

    def stats_summary(self) -> dict:
        """A JSON-able snapshot of this *shared instance*'s counters.

        The serve daemon multiplexes many clients onto one
        ``ParallelFileSystem``; this is the shape its ``stats`` protocol
        verb (and ``drx-serve --dump-stats``) exports, so operators see
        the aggregate load every tenant put on the shared substrate.
        """
        import dataclasses
        total = self.total_stats()
        alive = [s.server_id for s in self.servers if s.alive]
        return {
            "nservers": self.nservers,
            "stripe_size": self.stripe_size,
            "replication": self.replication,
            "alive_servers": alive,
            "files": len(self._files),
            "total": {**dataclasses.asdict(total),
                      "requests": total.requests,
                      "bytes_moved": total.bytes_moved},
            "per_server": [dataclasses.asdict(s)
                           for s in self.per_server_stats()],
            "replica": dataclasses.asdict(self.replica_stats()),
            "collective": dataclasses.asdict(self.collective_stats()),
        }

    def reset_stats(self) -> None:
        for s in self.servers:
            s.stats.reset()
        for f in self._files.values():
            f.io_time = 0.0
            f.wall_time = 0.0
            f.rstats.reset()
            f.cstats.reset()

    # ------------------------------------------------------------------
    # persistence (optional convenience)
    # ------------------------------------------------------------------
    def dump(self, directory: str | pathlib.Path) -> None:
        """Write every logical file flat into ``directory``."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for name, f in self._files.items():
            data = f.read(0, f.size)
            (directory / name.replace("/", "__")).write_bytes(data)

    def load(self, directory: str | pathlib.Path) -> None:
        """Import every flat file of ``directory`` as a logical file."""
        directory = pathlib.Path(directory)
        for path in sorted(directory.iterdir()):
            if not path.is_file():
                continue
            name = path.name.replace("__", "/")
            f = self.open_or_create(name)
            f.write(0, path.read_bytes())
