"""One simulated I/O server of the parallel file system.

A server owns a set of *objects* (one per logical file — PVFS2 likewise
stores one datafile per I/O server per file).  It services ordered
batches of read/write requests against an object, counts requests,
bytes and seeks, and accumulates simulated busy time from the cost
model.  Storage is a plain ``bytearray`` per object; reads past the
written end return zeros (sparse-file semantics, which the append-only
DRX data file relies on when a segment is materialized lazily).

Failure model.  A server can be *killed* (``alive = False``): every
request then raises :class:`~repro.core.errors.ServerDownError` until
``revive()``.  A revived server is *stale* — its bytes may predate
writes it missed — and serves no reads until an online rebuild
re-replicates its objects and calls ``mark_rebuilt()``.  Writes,
however, are *written through* to a stale server: replicated writers
keep fanning out to it so a byte written while the rebuild is in
flight can never be lost (the rebuild re-copies everything an absent
server missed, and write-through covers everything newer).
Independently, a lightweight failure detector
counts consecutive errored requests (injected faults included); at
``suspect_threshold`` the server is marked *suspect*, which replicated
readers use as an advisory hint to prefer another replica.  One success
clears the suspicion.

Every externally reachable operation — object lifecycle and request
batches alike — funnels through the single checked entry point
``_touch()``, so liveness and the optional fault plan are consulted
uniformly (earlier revisions only checked the batch paths, letting
scalar byte-store traffic bypass fault injection).

Concurrency.  :class:`~repro.core.executor.IOExecutor` dispatches
per-server batches from multiple threads, so every operation runs under
a per-server reentrant lock: one server services one batch at a time
(it models a single disk) while distinct servers proceed in parallel.
With ``realtime_factor > 0`` a batch additionally *sleeps* for
``elapsed * realtime_factor`` wall-clock seconds while holding the
lock — the sleep releases the GIL, so concurrently dispatched batches
on different servers genuinely overlap, which is what lets the
executor benchmarks measure real (not just simulated) parallel
speedup.
"""

from __future__ import annotations

import threading
import time

from ..core.errors import PFSError, ServerDownError
from .costmodel import CostModel, DEFAULT_COST_MODEL
from .stats import IOStats

__all__ = ["IOServer"]


class IOServer:
    """A single I/O server: object store + counters + time model."""

    #: consecutive errored requests before the server is marked suspect
    suspect_threshold = 3

    def __init__(self, server_id: int,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 fault_plan=None, realtime_factor: float = 0.0) -> None:
        self.server_id = server_id
        self.cost_model = cost_model
        self.stats = IOStats()
        #: wall-clock seconds slept per simulated second of service time
        #: (0 = pure simulation, no sleeping)
        self.realtime_factor = float(realtime_factor)
        #: one batch at a time per server (a server models one disk);
        #: distinct servers proceed concurrently under the executor
        self._lock = threading.RLock()
        #: optional fault source (duck-typed so pfs stays import-free of
        #: the drx layer): any object with ``check(op)`` that raises when
        #: a fault is due — e.g. ``repro.drx.resilience.FaultPlan``.
        self.fault_plan = fault_plan
        #: False once killed; every request then raises ServerDownError
        self.alive = True
        #: True after revive until rebuild: bytes may miss writes, so the
        #: server serves no reads until re-replicated (writes are still
        #: accepted — the write-through that makes online rebuild safe)
        self.stale = False
        #: advisory failure-detector verdict (replicated readers prefer
        #: another replica; never consulted on the unreplicated path)
        self.suspect = False
        self._consecutive_errors = 0
        self._objects: dict[str, bytearray] = {}
        #: last byte position + 1 touched per object, for seek accounting
        self._head: dict[str, int] = {}

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def kill(self, wipe: bool = False) -> None:
        """Take the server down; ``wipe`` additionally loses its disks
        (models a replacement server rather than a reboot)."""
        with self._lock:
            self.alive = False
            if wipe:
                self._objects.clear()
                self._head.clear()

    def revive(self) -> None:
        """Bring a killed server back, *stale*: it serves no reads (but
        accepts write-through) until an online rebuild re-replicates
        its objects."""
        with self._lock:
            if self.alive:
                return
            self.alive = True
            self.stale = True
            self.suspect = False
            self._consecutive_errors = 0

    def mark_rebuilt(self) -> None:
        """Clear the stale flag once rebuild restored the objects."""
        with self._lock:
            self.stale = False
            self.suspect = False
            self._consecutive_errors = 0

    @property
    def available(self) -> bool:
        """Whether the server may serve *reads* (alive and not stale).
        Writes only require ``alive`` — see write-through above."""
        return self.alive and not self.stale

    # ------------------------------------------------------------------
    # checked entry point
    # ------------------------------------------------------------------
    def _touch(self, op: str) -> None:
        """The single gate every operation passes: liveness, then the
        fault plan.  Injected faults feed the failure detector."""
        if not self.alive:
            raise ServerDownError(
                f"server {self.server_id} is down (op {op})")
        if self.fault_plan is not None:
            try:
                self.fault_plan.check(f"server.{op}")
            except ServerDownError:
                raise
            except PFSError:
                self._consecutive_errors += 1
                if self._consecutive_errors >= self.suspect_threshold:
                    self.suspect = True
                raise
        self._consecutive_errors = 0
        self.suspect = False

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------
    def create_object(self, name: str) -> None:
        with self._lock:
            self._touch("create")
            if name in self._objects:
                raise PFSError(
                    f"server {self.server_id}: object {name!r} exists")
            self._objects[name] = bytearray()
            self._head[name] = 0

    def has_object(self, name: str) -> bool:
        with self._lock:
            return name in self._objects

    def delete_object(self, name: str) -> None:
        with self._lock:
            self._touch("delete")
            self._objects.pop(name, None)
            self._head.pop(name, None)

    def object_size(self, name: str) -> int:
        with self._lock:
            self._touch("stat")
            return len(self._objects.get(name, b""))

    # ------------------------------------------------------------------
    # request batches
    # ------------------------------------------------------------------
    def read_batch(self, name: str,
                   requests: list[tuple[int, int]]) -> tuple[list[bytes], float]:
        """Service an ordered batch of ``(offset, length)`` reads.

        Returns the data pieces and the simulated service time of the
        batch on this server.
        """
        with self._lock:
            self._touch("read")
            store = self._require(name)
            out: list[bytes] = []
            elapsed = 0.0
            head = self._head[name]
            for off, length in requests:
                seek = off != head
                end = off + length
                if end <= len(store):
                    piece = bytes(store[off:end])
                else:
                    avail = store[off:len(store)] if off < len(store) else b""
                    piece = bytes(avail) + b"\x00" * (length - len(avail))
                out.append(piece)
                elapsed += self.cost_model.request_time(length, seek)
                self.stats.read_requests += 1
                self.stats.bytes_read += length
                if seek:
                    self.stats.seeks += 1
                head = end
            self._head[name] = head
            self.stats.busy_time += elapsed
            self._service_delay(elapsed)
            return out, elapsed

    def write_batch(self, name: str,
                    requests: list[tuple[int, bytes]]) -> float:
        """Service an ordered batch of ``(offset, data)`` writes."""
        with self._lock:
            self._touch("write")
            store = self._require(name)
            elapsed = 0.0
            head = self._head[name]
            for off, data in requests:
                length = len(data)
                seek = off != head
                end = off + length
                if end > len(store):
                    store.extend(b"\x00" * (end - len(store)))
                store[off:end] = data
                elapsed += self.cost_model.request_time(length, seek)
                self.stats.write_requests += 1
                self.stats.bytes_written += length
                if seek:
                    self.stats.seeks += 1
                head = end
            self._head[name] = head
            self.stats.busy_time += elapsed
            self._service_delay(elapsed)
            return elapsed

    def _service_delay(self, elapsed: float) -> None:
        """Sleep out the batch's simulated service time, scaled by
        ``realtime_factor``.  Held under the server lock on purpose: the
        single simulated disk stays busy for the duration, while other
        servers' batches overlap it (the sleep releases the GIL)."""
        if self.realtime_factor > 0.0 and elapsed > 0.0:
            time.sleep(elapsed * self.realtime_factor)

    # ------------------------------------------------------------------
    # out-of-band hooks (verification / chaos tests only)
    # ------------------------------------------------------------------
    def peek(self, name: str, offset: int, length: int) -> bytes:
        """Read object bytes without stats, cost or fault accounting —
        the replica-verification hook.  Still refuses on a dead server
        (there is nothing trustworthy to verify)."""
        with self._lock:
            if not self.alive:
                raise ServerDownError(
                    f"server {self.server_id} is down (op peek)")
            store = self._objects.get(name, b"")
            end = offset + length
            avail = bytes(store[offset:min(end, len(store))])
            return avail + b"\x00" * (length - len(avail))

    def patch(self, name: str, offset: int, data: bytes) -> None:
        """Overwrite object bytes out of band — no stats, no cost, no
        fault plan.  The write-side twin of :meth:`peek`: replica
        arbitration heals a diverging copy through it so a logical
        *read* never perturbs write counters or injected-fault
        schedules.  Raises on a missing object (callers pick which
        copies to touch); stale servers are patchable (a later rebuild
        overwrites them wholesale anyway)."""
        with self._lock:
            store = self._objects.get(name)
            if store is None:
                raise PFSError(
                    f"server {self.server_id}: no object {name!r}")
            end = offset + len(data)
            if end > len(store):
                store.extend(b"\x00" * (end - len(store)))
            store[offset:end] = data

    def corrupt(self, name: str, offset: int, data: bytes) -> None:
        """Silently overwrite object bytes (torn-write simulation for
        CRC-arbitration tests) — :meth:`patch` under its chaos-test
        name."""
        self.patch(name, offset, data)

    # ------------------------------------------------------------------
    def _require(self, name: str) -> bytearray:
        try:
            return self._objects[name]
        except KeyError:
            raise PFSError(
                f"server {self.server_id}: no object {name!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("up" if self.available else
                 "stale" if self.alive else "down")
        return (f"IOServer(id={self.server_id}, {state}, "
                f"objects={len(self._objects)}, {self.stats})")
