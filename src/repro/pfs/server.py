"""One simulated I/O server of the parallel file system.

A server owns a set of *objects* (one per logical file — PVFS2 likewise
stores one datafile per I/O server per file).  It services ordered
batches of read/write requests against an object, counts requests,
bytes and seeks, and accumulates simulated busy time from the cost
model.  Storage is a plain ``bytearray`` per object; reads past the
written end return zeros (sparse-file semantics, which the append-only
DRX data file relies on when a segment is materialized lazily).
"""

from __future__ import annotations

from ..core.errors import PFSError
from .costmodel import CostModel, DEFAULT_COST_MODEL
from .stats import IOStats

__all__ = ["IOServer"]


class IOServer:
    """A single I/O server: object store + counters + time model."""

    def __init__(self, server_id: int,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 fault_plan=None) -> None:
        self.server_id = server_id
        self.cost_model = cost_model
        self.stats = IOStats()
        #: optional fault source (duck-typed so pfs stays import-free of
        #: the drx layer): any object with ``check(op)`` that raises when
        #: a fault is due — e.g. ``repro.drx.resilience.FaultPlan``.
        self.fault_plan = fault_plan
        self._objects: dict[str, bytearray] = {}
        #: last byte position + 1 touched per object, for seek accounting
        self._head: dict[str, int] = {}

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------
    def create_object(self, name: str) -> None:
        if name in self._objects:
            raise PFSError(f"server {self.server_id}: object {name!r} exists")
        self._objects[name] = bytearray()
        self._head[name] = 0

    def has_object(self, name: str) -> bool:
        return name in self._objects

    def delete_object(self, name: str) -> None:
        self._objects.pop(name, None)
        self._head.pop(name, None)

    def object_size(self, name: str) -> int:
        return len(self._objects.get(name, b""))

    # ------------------------------------------------------------------
    # request batches
    # ------------------------------------------------------------------
    def read_batch(self, name: str,
                   requests: list[tuple[int, int]]) -> tuple[list[bytes], float]:
        """Service an ordered batch of ``(offset, length)`` reads.

        Returns the data pieces and the simulated service time of the
        batch on this server.
        """
        if self.fault_plan is not None:
            self.fault_plan.check("server.read")
        store = self._require(name)
        out: list[bytes] = []
        elapsed = 0.0
        head = self._head[name]
        for off, length in requests:
            seek = off != head
            end = off + length
            if end <= len(store):
                piece = bytes(store[off:end])
            else:
                avail = store[off:len(store)] if off < len(store) else b""
                piece = bytes(avail) + b"\x00" * (length - len(avail))
            out.append(piece)
            elapsed += self.cost_model.request_time(length, seek)
            self.stats.read_requests += 1
            self.stats.bytes_read += length
            if seek:
                self.stats.seeks += 1
            head = end
        self._head[name] = head
        self.stats.busy_time += elapsed
        return out, elapsed

    def write_batch(self, name: str,
                    requests: list[tuple[int, bytes]]) -> float:
        """Service an ordered batch of ``(offset, data)`` writes."""
        if self.fault_plan is not None:
            self.fault_plan.check("server.write")
        store = self._require(name)
        elapsed = 0.0
        head = self._head[name]
        for off, data in requests:
            length = len(data)
            seek = off != head
            end = off + length
            if end > len(store):
                store.extend(b"\x00" * (end - len(store)))
            store[off:end] = data
            elapsed += self.cost_model.request_time(length, seek)
            self.stats.write_requests += 1
            self.stats.bytes_written += length
            if seek:
                self.stats.seeks += 1
            head = end
        self._head[name] = head
        self.stats.busy_time += elapsed
        return elapsed

    # ------------------------------------------------------------------
    def _require(self, name: str) -> bytearray:
        try:
            return self._objects[name]
        except KeyError:
            raise PFSError(
                f"server {self.server_id}: no object {name!r}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IOServer(id={self.server_id}, "
                f"objects={len(self._objects)}, {self.stats})")
