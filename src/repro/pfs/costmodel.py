"""Analytic disk/server time model for the simulated PFS.

Each I/O server is modelled as a simple disk with three parameters:

``request_overhead``
    Fixed per-request software/network cost (seconds).
``seek_time``
    Positioning cost paid when a request does not start where the
    previous request on the same server object ended (seconds).
``bandwidth``
    Sequential transfer rate (bytes/second).

A batch of requests handed to one server costs::

    sum_i  overhead + seek_i * seek_time + len_i / bandwidth

and a *parallel* operation spanning several servers completes in the
maximum of the per-server batch times (servers work concurrently) —
exactly the property that makes striped collective I/O win and that the
paper's E3/E5 experiments probe.

The defaults approximate a 2007-era cluster node: 8 ms seek, 60 MB/s
streaming, 0.2 ms per request.  The *shape* of every benchmark outcome is
insensitive to the exact values (the tests assert orderings, not
absolutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Per-server analytic time model (see module docstring)."""

    request_overhead: float = 0.2e-3
    seek_time: float = 8.0e-3
    bandwidth: float = 60e6

    def request_time(self, nbytes: int, seek: bool) -> float:
        """Simulated service time of one request on one server."""
        t = self.request_overhead + nbytes / self.bandwidth
        if seek:
            t += self.seek_time
        return t

    def batch_time(self, sizes: Sequence[int], seeks: Sequence[bool]) -> float:
        """Service time of an ordered batch of requests on one server."""
        return sum(self.request_time(n, s) for n, s in zip(sizes, seeks))


DEFAULT_COST_MODEL = CostModel()
