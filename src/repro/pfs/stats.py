"""I/O accounting for the simulated parallel file system.

The paper's performance claims are claims about *access patterns*: how
many I/O requests an operation issues, how contiguous they are, how many
bytes move, and how well the load spreads over the I/O servers.  Wall
clock on the original PVFS2 cluster is not reproducible here, so every
benchmark reports these counters plus the analytic time of
:mod:`repro.pfs.costmodel` — deterministic quantities whose *shape*
(who wins, by what factor) carries over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStats", "ReplicaStats", "CollectiveStats"]


@dataclass
class IOStats:
    """Cumulative I/O counters for one server or one aggregated view."""

    read_requests: int = 0
    write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    #: simulated busy time in seconds (filled by the cost model)
    busy_time: float = 0.0

    @property
    def requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read + self.bytes_written

    def add(self, other: "IOStats") -> "IOStats":
        """Accumulate ``other`` into self (returns self for chaining)."""
        self.read_requests += other.read_requests
        self.write_requests += other.write_requests
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.seeks += other.seeks
        self.busy_time += other.busy_time
        return self

    def snapshot(self) -> "IOStats":
        return IOStats(
            read_requests=self.read_requests,
            write_requests=self.write_requests,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            seeks=self.seeks,
            busy_time=self.busy_time,
        )

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return IOStats(
            read_requests=self.read_requests - earlier.read_requests,
            write_requests=self.write_requests - earlier.write_requests,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            seeks=self.seeks - earlier.seeks,
            busy_time=self.busy_time - earlier.busy_time,
        )

    def reset(self) -> None:
        self.read_requests = 0
        self.write_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0
        self.busy_time = 0.0

    def __str__(self) -> str:
        return (f"reqs={self.requests} (r{self.read_requests}/"
                f"w{self.write_requests}) bytes={self.bytes_moved} "
                f"seeks={self.seeks} busy={self.busy_time * 1e3:.3f}ms")


@dataclass
class CollectiveStats:
    """Counters of the collective-I/O engine (data sieving + two-phase
    buffering) for one file or one aggregated view.

    The engine lives in :mod:`repro.mpi.collective`; the counters live
    here because the ``pfs`` layer owns the file object they hang off
    (``PFSFile.cstats``) and must not import the ``mpi`` layer.  The
    before/after request pair is the headline number of the ROMIO paper:
    how many noncontiguous pieces the ranks *asked* for versus how many
    (large, mostly contiguous) extents actually reached the file system.
    """

    #: collective read/write operations driven through the engine
    collectives: int = 0
    #: covering reads that merged at least one hole (data sieving)
    sieve_reads: int = 0
    #: read-modify-write covering groups on the write path
    sieve_rmw: int = 0
    #: hole bytes transferred only to make requests contiguous (waste)
    wasted_bytes: int = 0
    #: payload bytes moved between ranks in phase A (requests carrying
    #: write data, and read replies) — O(total data), not O(P x data)
    exchange_bytes: int = 0
    #: wall-clock seconds spent in the phase-A rank exchange
    exchange_time: float = 0.0
    #: simulated seconds of the phase-B file-system accesses
    io_time: float = 0.0
    #: extents requested by the ranks (before aggregation/sieving)
    requests_before: int = 0
    #: extents actually issued to the PFS (after aggregation/sieving)
    requests_after: int = 0

    def add(self, other: "CollectiveStats") -> "CollectiveStats":
        """Accumulate ``other`` into self (returns self for chaining)."""
        self.collectives += other.collectives
        self.sieve_reads += other.sieve_reads
        self.sieve_rmw += other.sieve_rmw
        self.wasted_bytes += other.wasted_bytes
        self.exchange_bytes += other.exchange_bytes
        self.exchange_time += other.exchange_time
        self.io_time += other.io_time
        self.requests_before += other.requests_before
        self.requests_after += other.requests_after
        return self

    def snapshot(self) -> "CollectiveStats":
        return CollectiveStats(
            collectives=self.collectives,
            sieve_reads=self.sieve_reads,
            sieve_rmw=self.sieve_rmw,
            wasted_bytes=self.wasted_bytes,
            exchange_bytes=self.exchange_bytes,
            exchange_time=self.exchange_time,
            io_time=self.io_time,
            requests_before=self.requests_before,
            requests_after=self.requests_after,
        )

    def delta(self, earlier: "CollectiveStats") -> "CollectiveStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return CollectiveStats(
            collectives=self.collectives - earlier.collectives,
            sieve_reads=self.sieve_reads - earlier.sieve_reads,
            sieve_rmw=self.sieve_rmw - earlier.sieve_rmw,
            wasted_bytes=self.wasted_bytes - earlier.wasted_bytes,
            exchange_bytes=self.exchange_bytes - earlier.exchange_bytes,
            exchange_time=self.exchange_time - earlier.exchange_time,
            io_time=self.io_time - earlier.io_time,
            requests_before=self.requests_before - earlier.requests_before,
            requests_after=self.requests_after - earlier.requests_after,
        )

    def reset(self) -> None:
        self.collectives = 0
        self.sieve_reads = 0
        self.sieve_rmw = 0
        self.wasted_bytes = 0
        self.exchange_bytes = 0
        self.exchange_time = 0.0
        self.io_time = 0.0
        self.requests_before = 0
        self.requests_after = 0

    def __str__(self) -> str:
        return (f"colls={self.collectives} "
                f"reqs={self.requests_before}->{self.requests_after} "
                f"sieve(r{self.sieve_reads}/rmw{self.sieve_rmw}) "
                f"waste={self.wasted_bytes} xchg={self.exchange_bytes} "
                f"io={self.io_time * 1e3:.3f}ms")


@dataclass
class ReplicaStats:
    """Replication / failure-handling counters for one file or one
    aggregated view.

    All counters stay zero on the unreplicated (replication = 1) path —
    one of the acceptance criteria for the failure-tolerance tier is
    that the default path is byte- and stats-identical to the
    pre-replication code.
    """

    #: pieces served by a non-primary replica (degraded operation)
    degraded_reads: int = 0
    #: read batches re-issued to another replica after a server error
    failovers: int = 0
    #: replica copies skipped on write because their server was down
    #: (or wiped and not yet rebuilt) — the redundancy debt
    #: ``rebuild()`` repays
    missed_writes: int = 0
    #: replica pieces written through to a stale (revived, not yet
    #: rebuilt) server — the write-through that lets writes interleave
    #: with an online rebuild without losing bytes
    write_through: int = 0
    #: bytes written to replica copies beyond the primary (fan-out cost)
    replica_bytes: int = 0
    #: bytes copied between servers by online rebuilds
    rebuild_bytes: int = 0
    #: server objects re-replicated by online rebuilds
    rebuilt_objects: int = 0

    def add(self, other: "ReplicaStats") -> "ReplicaStats":
        """Accumulate ``other`` into self (returns self for chaining)."""
        self.degraded_reads += other.degraded_reads
        self.failovers += other.failovers
        self.missed_writes += other.missed_writes
        self.write_through += other.write_through
        self.replica_bytes += other.replica_bytes
        self.rebuild_bytes += other.rebuild_bytes
        self.rebuilt_objects += other.rebuilt_objects
        return self

    def snapshot(self) -> "ReplicaStats":
        return ReplicaStats(
            degraded_reads=self.degraded_reads,
            failovers=self.failovers,
            missed_writes=self.missed_writes,
            write_through=self.write_through,
            replica_bytes=self.replica_bytes,
            rebuild_bytes=self.rebuild_bytes,
            rebuilt_objects=self.rebuilt_objects,
        )

    def delta(self, earlier: "ReplicaStats") -> "ReplicaStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return ReplicaStats(
            degraded_reads=self.degraded_reads - earlier.degraded_reads,
            failovers=self.failovers - earlier.failovers,
            missed_writes=self.missed_writes - earlier.missed_writes,
            write_through=self.write_through - earlier.write_through,
            replica_bytes=self.replica_bytes - earlier.replica_bytes,
            rebuild_bytes=self.rebuild_bytes - earlier.rebuild_bytes,
            rebuilt_objects=self.rebuilt_objects - earlier.rebuilt_objects,
        )

    def reset(self) -> None:
        self.degraded_reads = 0
        self.failovers = 0
        self.missed_writes = 0
        self.write_through = 0
        self.replica_bytes = 0
        self.rebuild_bytes = 0
        self.rebuilt_objects = 0

    def __str__(self) -> str:
        return (f"degraded={self.degraded_reads} "
                f"failovers={self.failovers} "
                f"missed_writes={self.missed_writes} "
                f"write_through={self.write_through} "
                f"replica_bytes={self.replica_bytes} "
                f"rebuild_bytes={self.rebuild_bytes} "
                f"rebuilt={self.rebuilt_objects}")
