"""I/O accounting for the simulated parallel file system.

The paper's performance claims are claims about *access patterns*: how
many I/O requests an operation issues, how contiguous they are, how many
bytes move, and how well the load spreads over the I/O servers.  Wall
clock on the original PVFS2 cluster is not reproducible here, so every
benchmark reports these counters plus the analytic time of
:mod:`repro.pfs.costmodel` — deterministic quantities whose *shape*
(who wins, by what factor) carries over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStats"]


@dataclass
class IOStats:
    """Cumulative I/O counters for one server or one aggregated view."""

    read_requests: int = 0
    write_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    seeks: int = 0
    #: simulated busy time in seconds (filled by the cost model)
    busy_time: float = 0.0

    @property
    def requests(self) -> int:
        return self.read_requests + self.write_requests

    @property
    def bytes_moved(self) -> int:
        return self.bytes_read + self.bytes_written

    def add(self, other: "IOStats") -> "IOStats":
        """Accumulate ``other`` into self (returns self for chaining)."""
        self.read_requests += other.read_requests
        self.write_requests += other.write_requests
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.seeks += other.seeks
        self.busy_time += other.busy_time
        return self

    def snapshot(self) -> "IOStats":
        return IOStats(
            read_requests=self.read_requests,
            write_requests=self.write_requests,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            seeks=self.seeks,
            busy_time=self.busy_time,
        )

    def delta(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return IOStats(
            read_requests=self.read_requests - earlier.read_requests,
            write_requests=self.write_requests - earlier.write_requests,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            seeks=self.seeks - earlier.seeks,
            busy_time=self.busy_time - earlier.busy_time,
        )

    def reset(self) -> None:
        self.read_requests = 0
        self.write_requests = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seeks = 0
        self.busy_time = 0.0

    def __str__(self) -> str:
        return (f"reqs={self.requests} (r{self.read_requests}/"
                f"w{self.write_requests}) bytes={self.bytes_moved} "
                f"seeks={self.seeks} busy={self.busy_time * 1e3:.3f}ms")
