"""Chained-declustering replica placement (pure arithmetic).

The paper's DRX-MP design replicates the tiny meta-data into every
process so "each node can determine whether the element is local or
remote"; the *data* placement below extends the same spirit to server
failures: every stripe exists on ``r`` servers, placed by **chained
declustering** [Hsiao & DeWitt 1990], the scheme ViPIOS-style server
groups build on.  Stripe ``s`` keeps its primary on server ``s % n``
(exactly the round-robin :class:`~repro.pfs.striping.StripeLayout`
placement, so replication factor 1 is bit- and stats-identical to the
unreplicated layout) and copy ``c`` on server ``(s + c) % n`` — each
server's load spills to its ring successor when it fails, so a single
failure raises every survivor's load by at most ``1/(n-1)`` instead of
doubling one mirror partner's.

Copies are materialized as *separate server objects*: copy ``c`` of
logical file ``name`` lives in object ``name`` (``c = 0``) or
``name@r{c}`` on each server, at the **same server-local offset** the
primary layout assigns (``(s // n) * stripe_size + within``).  Within
one copy-``c`` object on server ``j`` the resident stripes are exactly
``s ≡ j - c (mod n)``, whose local offsets ``(s // n) * stripe_size``
are distinct and consecutive — so a copy object is always dense in
stripe order.  Better, the chained shift makes copy objects **pairwise
mirrors**: the copy-``c`` object on server ``j`` and the copy-``c'``
object on server ``(j - c + c') % n`` hold the *same stripes at the
same offsets* and are therefore byte-identical when healthy.  Online
rebuild (:meth:`~repro.pfs.pfile.PFSFile.rebuild`) exploits this: a
lost server's objects are re-replicated by streaming its partner
objects in a handful of maximal contiguous runs, and replica
verification is a plain byte-compare of partner objects.

All functions are pure; :class:`ReplicaLayout` is immutable, like the
:class:`StripeLayout` it extends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.errors import PFSError
from .striping import Extent, StripeLayout

__all__ = ["ReplicaLayout", "replica_object_name"]


def replica_object_name(name: str, copy: int) -> str:
    """The server-object name holding copy ``copy`` of file ``name``.

    Copy 0 (the primary) uses the plain file name, so an unreplicated
    layout produces exactly the historical object namespace.
    """
    if copy < 0:
        raise PFSError(f"negative replica copy {copy}")
    return name if copy == 0 else f"{name}@r{copy}"


@dataclass(frozen=True)
class ReplicaLayout(StripeLayout):
    """A striped layout whose stripes exist on ``replication`` servers.

    ``replication = 1`` degenerates to :class:`StripeLayout` exactly;
    ``replication = nservers`` is full mirroring.
    """

    replication: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.replication <= self.nservers:
            raise PFSError(
                f"replication factor must be in [1, {self.nservers}] "
                f"(nservers), got {self.replication}"
            )

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def replica_server(self, stripe: int, copy: int) -> int:
        """Which server holds copy ``copy`` of stripe ``stripe``."""
        if not 0 <= copy < self.replication:
            raise PFSError(
                f"copy {copy} outside replication factor {self.replication}"
            )
        return (stripe + copy) % self.nservers

    def replica_servers(self, stripe: int) -> tuple[int, ...]:
        """All servers holding stripe ``stripe``, primary first."""
        return tuple((stripe + c) % self.nservers
                     for c in range(self.replication))

    def partner_server(self, server: int, copy: int, src_copy: int) -> int:
        """The server whose copy-``src_copy`` object mirrors server
        ``server``'s copy-``copy`` object.

        Both objects hold the stripes ``s ≡ server - copy (mod n)`` at
        identical local offsets, so they are byte-identical when
        healthy — the property rebuild and verification rest on.
        """
        if not 0 <= copy < self.replication:
            raise PFSError(f"copy {copy} outside replication factor "
                           f"{self.replication}")
        if not 0 <= src_copy < self.replication:
            raise PFSError(f"copy {src_copy} outside replication factor "
                           f"{self.replication}")
        return (server - copy + src_copy) % self.nservers

    def split_extent_copy(self, offset: int, length: int, copy: int
                          ) -> Iterator[tuple[int, int, int, int]]:
        """Split a logical extent into per-server pieces of copy ``copy``.

        Yields ``(server, server_offset, logical_offset, piece_length)``
        like :meth:`StripeLayout.split_extent`, but routed to the
        copy-``copy`` replica of each stripe.  The server-local offset
        is identical for every copy.
        """
        if not 0 <= copy < self.replication:
            raise PFSError(
                f"copy {copy} outside replication factor {self.replication}"
            )
        for server, srv_off, log_off, take in self.split_extent(offset,
                                                                length):
            yield ((server + copy) % self.nservers, srv_off, log_off, take)

    def split_extents_copy(self, extents: Sequence[Extent], copy: int
                           ) -> list[list[tuple[int, int, int]]]:
        """Group copy-``copy`` extent pieces per server (request order
        preserved within each server), like
        :meth:`StripeLayout.split_extents`."""
        pieces: list[list[tuple[int, int, int]]] = \
            [[] for _ in range(self.nservers)]
        for off, length in extents:
            for server, srv_off, log_off, take in \
                    self.split_extent_copy(off, length, copy):
                pieces[server].append((srv_off, log_off, take))
        return pieces

    # ------------------------------------------------------------------
    # rebuild support
    # ------------------------------------------------------------------
    def stripes_of_object(self, server: int, copy: int,
                          nstripes: int) -> range:
        """Indices (into the copy object's dense stripe order) that
        exist given ``nstripes`` total stripes.

        The copy-``copy`` object on ``server`` holds stripes
        ``s = ρ + k·n`` with ``ρ = (server - copy) mod n`` at local
        offset ``k · stripe_size``; the returned range enumerates the
        valid ``k``.
        """
        rho = (server - copy) % self.nservers
        if nstripes <= rho:
            return range(0)
        return range(0, 1 + (nstripes - rho - 1) // self.nservers)

    def object_extent(self, server: int, copy: int,
                      file_size: int) -> int:
        """Bytes of the copy object on ``server`` that can hold live
        data for a logical file of ``file_size`` bytes (the rebuild
        copy bound; sparse tails read as zeros on every replica)."""
        if file_size <= 0:
            return 0
        nstripes = -(-file_size // self.stripe_size)
        ks = self.stripes_of_object(server, copy, nstripes)
        if not len(ks):
            return 0
        last_k = ks[-1]
        rho = (server - copy) % self.nservers
        last_stripe = rho + last_k * self.nservers
        # the last stripe of the file may be partial
        stripe_start = last_stripe * self.stripe_size
        last_len = min(self.stripe_size, file_size - stripe_start)
        return last_k * self.stripe_size + last_len
